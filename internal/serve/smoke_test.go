package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
)

// TestServeSmoke is the end-to-end acceptance run: a real daemon on an
// ephemeral port, 32 concurrent closed-loop clients over 4 distinct registry
// entries, zero lost jobs (every submission ends converged, 429-rejected, or
// canceled by its own deadline), a graceful drain, and no goroutine leaks.
// `make serve-smoke` runs exactly this under the race detector.
func TestServeSmoke(t *testing.T) {
	// Warm the process-wide kernel pool before the baseline so its
	// long-lived workers don't read as a leak.
	par.Default()
	runtime.GC()
	base := runtime.NumGoroutine()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 4, QueueDepth: 8, CacheEntries: 3})
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	// 4 distinct registry entries, deliberately one more than the cache cap
	// so the LRU churns under load.
	specs := []SolveRequest{
		{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}},
		{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 6}, Method: "pipe-pscg"},
		{ProblemSpec: ProblemSpec{Problem: "poisson125", N: 8}, Method: "pcg"},
		{ProblemSpec: ProblemSpec{Problem: "thermal2", Scale: 64}, Method: "pscg"},
	}

	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	const clients = 32
	const jobsPerClient = 3
	var converged, rejected, canceled, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < jobsPerClient; k++ {
				req := specs[(c+k)%len(specs)]
				if c%8 == 7 && k == 1 {
					// A slice of the load carries a deliberately blown
					// deadline: these must come back canceled, not lost.
					req.TimeoutMS = 1
				}
				body, _ := json.Marshal(req)
				resp, err := client.Post(url+"/v1/solve", "application/json", strings.NewReader(string(body)))
				if err != nil {
					other.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					rejected.Add(1)
					resp.Body.Close()
				case http.StatusOK:
					var st JobStatus
					if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
						other.Add(1)
					} else {
						switch st.State {
						case JobConverged:
							converged.Add(1)
						case JobCanceled:
							canceled.Add(1)
						default:
							t.Errorf("client %d: unexpected terminal state %s (%s)", c, st.State, st.Error)
							other.Add(1)
						}
					}
					resp.Body.Close()
				default:
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					other.Add(1)
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	total := converged.Load() + rejected.Load() + canceled.Load() + other.Load()
	if total != clients*jobsPerClient {
		t.Fatalf("lost jobs: accounted %d of %d", total, clients*jobsPerClient)
	}
	if other.Load() != 0 {
		t.Fatalf("%d jobs ended outside converged/429/canceled", other.Load())
	}
	if converged.Load() == 0 {
		t.Fatal("no job converged under load")
	}
	t.Logf("smoke: %d converged, %d rejected(429), %d canceled-by-deadline",
		converged.Load(), rejected.Load(), canceled.Load())

	// Scrape /metrics once while alive: the service totals must account for
	// every job the clients saw.
	mr, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metricsBody strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := mr.Body.Read(buf)
		metricsBody.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	mr.Body.Close()
	out := metricsBody.String()
	for _, want := range []string{
		fmt.Sprintf(`solverd_jobs_total{outcome="converged"} %d`, converged.Load()),
		fmt.Sprintf(`solverd_jobs_total{outcome="rejected"} %d`, rejected.Load()),
		fmt.Sprintf(`solverd_jobs_total{outcome="canceled"} %d`, canceled.Load()),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Disconnect the client's keep-alive pool before draining. Under the
	// burst the transport sometimes dials a spare TCP conn that never
	// carries a request; the server holds it in StateNew, and Shutdown
	// refuses to reap StateNew conns until they have been idle >5s
	// (net/http issue 22682) — longer than Drain's HTTP window. Real
	// clients hang up; so does this one.
	tr.CloseIdleConnections()

	// Graceful drain (cmd/solverd runs this on SIGTERM): admissions close,
	// remaining work finishes, the HTTP server shuts down.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Drain")
	}
	if q, r := s.Jobs.QueueDepth(), s.Jobs.InFlight(); q != 0 || r != 0 {
		t.Fatalf("after drain: %d queued, %d running", q, r)
	}

	// No goroutine leaks: workers, rank goroutines and HTTP plumbing are all
	// gone once idle connections close.
	tr.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(deadline) {
			var sb strings.Builder
			pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, sb.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
