package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPprofGatedByFlag pins the opt-in contract: the profiling endpoints
// exist exactly when Config.EnablePprof is set.
func TestPprofGatedByFlag(t *testing.T) {
	paths := []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"}
	for _, tc := range []struct {
		name   string
		enable bool
		want   int
	}{
		{"enabled", true, http.StatusOK},
		{"disabled", false, http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 2, EnablePprof: tc.enable})
			for _, path := range paths {
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != tc.want {
					t.Errorf("GET %s with EnablePprof=%v: status %d, want %d",
						path, tc.enable, rec.Code, tc.want)
				}
			}
		})
	}
}

// TestHistogramConcurrentObserve hammers one histogram from several
// goroutines with a value that sums exactly in float64, then checks the
// rendered _sum/_count/_bucket series are mutually consistent — the
// invariant a torn (unlocked) Observe would break.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	h.write(&buf, "t")
	series := map[string]string{}
	var infBucket string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		name, val, _ := strings.Cut(line, " ")
		series[name] = val
		if strings.Contains(name, `le="+Inf"`) {
			infBucket = val
		}
	}
	const total = goroutines * per
	if got := series["t_count"]; got != strconv.Itoa(total) {
		t.Errorf("t_count = %s, want %d", got, total)
	}
	if got, _ := strconv.ParseFloat(series["t_sum"], 64); got != 0.5*total {
		t.Errorf("t_sum = %v, want %v", got, 0.5*total)
	}
	if infBucket != strconv.Itoa(total) {
		t.Errorf("+Inf bucket = %s, want %d (must equal _count)", infBucket, total)
	}
}

// TestMetricsPhaseAndOverlapSeries drives a fake-clock tracer through one
// span and one posted reduction, folds it in with AddObs, and checks the
// scrape carries the per-phase histogram and the overlap gauge with the
// exact values the ledger measured.
func TestMetricsPhaseAndOverlapSeries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	var now int64
	tr := obs.New(0, obs.WithClock(func() int64 { return now }))
	sp := tr.Begin(obs.PhaseSpMV)
	now += 2_000_000 // 2ms of SPMV
	tr.End(sp)
	h := tr.Post(3)
	now += 1_000_000 // 1ms hidden
	tr.BeginWait(h)
	now += 1_000_000 // 1ms exposed
	tr.EndWait(h)
	s.Metrics.AddObs(tr.Summary())

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`solverd_phase_seconds_count{phase="spmv"} 1`,
		fmt.Sprintf("solverd_phase_seconds_sum{phase=%q} 0.002", "spmv"),
		`solverd_phase_seconds_bucket{phase="pc_apply",le="+Inf"} 0`,
		`solverd_overlap_reductions_total{kind="posted"} 1`,
		`solverd_overlap_interval_seconds_total 0.002`,
		`solverd_overlap_wait_seconds_total 0.001`,
		// interval 2ms, residual wait 1ms → half the reduction was hidden.
		`solverd_overlap_efficiency 0.5`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestJobTraceSummaryAndResultEvent runs a pipelined job on the comm runtime
// through the manager and checks the observability plumbing end to end: the
// job retains a merged summary with phase spans and posted reductions, the
// result event carries the measured overlap efficiency, the service
// aggregate saw the same summary, and the structured log emitted the
// per-job record.
func TestJobTraceSummaryAndResultEvent(t *testing.T) {
	var logBuf syncBuffer
	s, _ := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		Log: slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	j, err := s.Jobs.Submit(SolveRequest{
		ProblemSpec: ProblemSpec{Problem: "poisson7", N: 6},
		Method:      "pipe-pscg",
		Ranks:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	if st := j.State(); st != JobConverged {
		_, jerr := j.Result()
		t.Fatalf("job state %s (err %v)", st, jerr)
	}

	sum := j.TraceSummary()
	if sum.Overlap.Posted == 0 {
		t.Fatal("no posted reductions in the job trace — tracer not wired through runComm")
	}
	for _, ph := range []obs.Phase{obs.PhaseSpMV, obs.PhasePCApply, obs.PhaseGram, obs.PhaseRecurrenceLC} {
		if sum.Phases[ph].Count == 0 {
			t.Errorf("phase %s has no spans in the job summary", ph)
		}
	}

	// The terminal result event carries the ledger's hidden fraction.
	events, cancel := j.Subscribe()
	defer cancel()
	var last Event
	for ev := range events {
		last = ev
	}
	if last.Type != "result" {
		t.Fatalf("last event type %q", last.Type)
	}
	if last.OverlapEfficiency != sum.HiddenFraction() {
		t.Errorf("result event overlap efficiency %v != ledger %v",
			last.OverlapEfficiency, sum.HiddenFraction())
	}

	// Per-job structured log record with the key fields.
	logged := logBuf.String()
	for _, want := range []string{"job finished", "job=" + j.ID, "method=pipe-pscg", "ranks=2", "outcome=converged", "overlap_efficiency="} {
		if !strings.Contains(logged, want) {
			t.Errorf("log missing %q in:\n%s", want, logged)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
