package serve

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

func specP7(n int) ProblemSpec { return ProblemSpec{Problem: "poisson7", N: n} }

func TestRegistryBuildOnceAndHitCounting(t *testing.T) {
	met := NewMetrics()
	g := NewRegistry(4, met)
	e1, err := g.Acquire(specP7(5))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.Acquire(specP7(5))
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("same spec must share one entry")
	}
	if e1.Problem().A == nil || e1.Problem().A.Rows != 125 {
		t.Fatalf("bad problem build: %+v", e1.Problem().Name)
	}
	if met.cacheMisses.Load() != 1 || met.cacheHits.Load() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", met.cacheHits.Load(), met.cacheMisses.Load())
	}
	g.Release(e1)
	g.Release(e2)
}

func TestRegistryLRUEvictionRespectsPins(t *testing.T) {
	met := NewMetrics()
	g := NewRegistry(2, met)
	a, _ := g.Acquire(specP7(4))
	b, _ := g.Acquire(specP7(5))
	// Keep a pinned; release b so it is the only eviction candidate.
	g.Release(b)
	c, err := g.Acquire(specP7(6)) // exceeds cap → evict b (LRU, unpinned)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("len=%d want 2", g.Len())
	}
	if met.cacheEvictions.Load() != 1 {
		t.Fatalf("evictions=%d want 1", met.cacheEvictions.Load())
	}
	// b was evicted: reacquiring is a miss; a stayed pinned: a hit.
	b2, _ := g.Acquire(specP7(5))
	if b2 == b {
		t.Fatal("evicted entry must be rebuilt")
	}
	a2, _ := g.Acquire(specP7(4))
	if a2 != a {
		t.Fatal("pinned entry must survive eviction pressure")
	}
	for _, e := range []*Entry{a, c, b2, a2} {
		g.Release(e)
	}
}

func TestRegistryAllPinnedOvershoots(t *testing.T) {
	g := NewRegistry(1, NewMetrics())
	a, _ := g.Acquire(specP7(4))
	b, _ := g.Acquire(specP7(5))
	if g.Len() != 2 {
		t.Fatalf("len=%d want 2 (both pinned, overshoot allowed)", g.Len())
	}
	g.Release(a)
	g.Release(b)
	if g.Len() != 1 {
		t.Fatalf("len=%d want 1 after releases", g.Len())
	}
}

func TestRegistryUnknownProblemNotCached(t *testing.T) {
	g := NewRegistry(2, NewMetrics())
	if _, err := g.Acquire(ProblemSpec{Problem: "bogus"}); err == nil {
		t.Fatal("want error")
	}
	if g.Len() != 0 {
		t.Fatal("failed build must not stay resident")
	}
}

func TestRegistryPCPoolReuse(t *testing.T) {
	g := NewRegistry(2, NewMetrics())
	e, err := g.Acquire(specP7(5))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release(e)
	pc1, err := e.AcquirePC("jacobi")
	if err != nil || pc1 == nil {
		t.Fatalf("pc build: %v", err)
	}
	// Concurrent second checkout builds a distinct instance.
	pc2, _ := e.AcquirePC("jacobi")
	if pc1 == pc2 {
		t.Fatal("concurrent checkouts must not share an instance")
	}
	e.ReleasePC("jacobi", pc1)
	pc3, _ := e.AcquirePC("jacobi")
	if pc3 != pc1 {
		t.Fatal("released instance must be reused, not rebuilt")
	}
	e.ReleasePC("jacobi", pc2)
	e.ReleasePC("jacobi", pc3)
	if pc, err := e.AcquirePC("none"); err != nil || pc != nil {
		t.Fatal("'none' must yield a nil preconditioner")
	}
}

const uploadMM = `%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 4.0
2 2 4.0
3 3 4.0
2 1 -1.0
`

func TestRegistryUploadPlainAndGzip(t *testing.T) {
	g := NewRegistry(2, NewMetrics())
	rows, nnz, err := g.RegisterUpload("tiny", strings.NewReader(uploadMM))
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 || nnz != 5 { // symmetric off-diagonal expanded
		t.Fatalf("rows=%d nnz=%d", rows, nnz)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte(uploadMM))
	gz.Close()
	if _, _, err := g.RegisterUpload("tinygz", &buf); err != nil {
		t.Fatal(err)
	}
	if got := g.Uploads(); len(got) != 2 || got[0] != "tiny" || got[1] != "tinygz" {
		t.Fatalf("uploads = %v", got)
	}
	e, err := g.Acquire(ProblemSpec{Problem: "tinygz"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Problem().A.Rows != 3 {
		t.Fatal("upload entry not built from parsed matrix")
	}
	g.Release(e)

	if _, _, err := g.RegisterUpload("poisson7", strings.NewReader(uploadMM)); err == nil {
		t.Fatal("shadowing a built-in name must fail")
	}
	if _, _, err := g.RegisterUpload("  ", strings.NewReader(uploadMM)); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, _, err := g.RegisterUpload("rect", strings.NewReader(
		"%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n")); err == nil {
		t.Fatal("non-square upload must fail")
	}
}

func TestRegistryPartitionCached(t *testing.T) {
	g := NewRegistry(2, NewMetrics())
	e, err := g.Acquire(specP7(5))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release(e)
	p1 := e.Partition(4)
	p2 := e.Partition(4)
	if p1.P != 4 || p2.P != 4 {
		t.Fatalf("partition ranks %d/%d", p1.P, p2.P)
	}
	if p1.N != e.Problem().A.Rows {
		t.Fatal("partition size mismatch")
	}
}
