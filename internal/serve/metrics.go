package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// latencyBuckets are the request-latency histogram bounds in seconds
// (cumulative, Prometheus convention; +Inf is implicit).
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a fixed-bucket latency histogram in Prometheus semantics.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket, non-cumulative; +Inf is counts[len]
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.mu.Lock()
	h.counts[i]++
	h.sum += seconds
	h.total++
	h.mu.Unlock()
}

// write emits the histogram as <name>_bucket/_sum/_count series.
func (h *histogram) write(w io.Writer, name string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	var cum uint64
	for i, le := range latencyBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, total)
}

// Metrics is the service-level ledger the /metrics plane serves. Job
// outcomes, admission rejections and cache traffic are atomics; the kernel
// aggregate merges each finished job's trace.Counters via Counters.Add.
type Metrics struct {
	jobsConverged atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsRejected  atomic.Int64 // queue-full 429s
	jobsDrained   atomic.Int64 // 503s during drain
	jobsDeduped   atomic.Int64 // submissions attached to a retained job by idempotency key

	jobsCoalesced atomic.Int64 // jobs run inside a width>1 block solve
	jobsSolo      atomic.Int64 // jobs run as width-1 solves
	batchWidth    atomic.Int64 // width of the most recent batch (gauge)

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64

	fabricLeaks atomic.Int64 // comm-mode jobs whose fabric closed dirty (cancellation)

	tunerRecords    atomic.Int64 // auto-job outcomes folded into fingerprint records
	tunerWarmstarts atomic.Int64 // auto jobs resolved from a recorded fingerprint
	tunerSwitches   atomic.Int64 // records written by a stability/efficiency switch

	latency *histogram

	mu      sync.Mutex
	kernels trace.Counters // aggregate over finished jobs

	obsMu   sync.Mutex
	phases  [obs.NumPhases]obs.PhaseStat // per-phase duration aggregate
	overlap obs.OverlapStats             // overlap-ledger aggregate

	skewMu     sync.Mutex
	skewLast   obs.SkewReport // most recent multi-rank solve's analysis
	skewSolves int64          // multi-rank solves analyzed
}

// NewMetrics builds an empty ledger.
func NewMetrics() *Metrics { return &Metrics{latency: newHistogram()} }

// AddCounters folds one finished job's kernel counters into the aggregate.
func (m *Metrics) AddCounters(c *trace.Counters) {
	m.mu.Lock()
	m.kernels.Add(c)
	m.mu.Unlock()
}

// AddObs folds one finished job's merged trace summary into the service-wide
// phase-duration histograms and overlap ledger.
func (m *Metrics) AddObs(s obs.Summary) {
	m.obsMu.Lock()
	for p := range m.phases {
		m.phases[p].Merge(s.Phases[p])
	}
	m.overlap.Merge(s.Overlap)
	m.obsMu.Unlock()
}

// ObserveLatency records one job's end-to-end latency (submit to finish).
func (m *Metrics) ObserveLatency(seconds float64) { m.latency.Observe(seconds) }

// noteBatch records one solve execution of the given width: the width gauge
// tracks the most recent batch, and every member job is tallied as coalesced
// (width > 1) or solo.
func (m *Metrics) noteBatch(width int) {
	m.batchWidth.Store(int64(width))
	if width > 1 {
		m.jobsCoalesced.Add(int64(width))
	} else {
		m.jobsSolo.Add(1)
	}
}

// noteSkew records a multi-rank solve's per-rank skew analysis; the gauges
// track the most recent analyzed solve. Reports without a straggler (solo
// solves) are ignored.
func (m *Metrics) noteSkew(rep obs.SkewReport) {
	if rep.StragglerRank < 0 {
		return
	}
	m.skewMu.Lock()
	m.skewLast = rep
	m.skewSolves++
	m.skewMu.Unlock()
}

// countJob tallies a finished job's outcome.
func (m *Metrics) countJob(state JobState) {
	switch state {
	case JobConverged:
		m.jobsConverged.Add(1)
	case JobCanceled:
		m.jobsCanceled.Add(1)
	default:
		m.jobsFailed.Add(1)
	}
}

// WritePrometheus renders the full scrape: service gauges (queue depth,
// in-flight, registry size read live from mgr and reg), job outcome totals,
// cache traffic, the latency histogram, and the kernel-counter aggregate in
// trace's stable serialization.
func (m *Metrics) WritePrometheus(w io.Writer, mgr *Manager, reg *Registry) {
	if id := mgr.cfg.ShardID; id != "" {
		fmt.Fprintf(w, "# HELP solverd_shard_info Shard identity of this daemon inside a cluster.\n")
		fmt.Fprintf(w, "# TYPE solverd_shard_info gauge\n")
		fmt.Fprintf(w, "solverd_shard_info{shard=%q} 1\n", id)
	}
	fmt.Fprintf(w, "# HELP solverd_queue_depth Jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE solverd_queue_depth gauge\n")
	fmt.Fprintf(w, "solverd_queue_depth %d\n", mgr.QueueDepth())
	fmt.Fprintf(w, "# TYPE solverd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "solverd_inflight_jobs %d\n", mgr.InFlight())
	fmt.Fprintf(w, "# TYPE solverd_workers gauge\n")
	fmt.Fprintf(w, "solverd_workers %d\n", mgr.Workers())
	fmt.Fprintf(w, "# TYPE solverd_draining gauge\n")
	fmt.Fprintf(w, "solverd_draining %d\n", b2i(mgr.Draining()))
	fmt.Fprintf(w, "# TYPE solverd_registry_entries gauge\n")
	fmt.Fprintf(w, "solverd_registry_entries %d\n", reg.Len())

	fmt.Fprintf(w, "# TYPE solverd_jobs_total counter\n")
	fmt.Fprintf(w, "solverd_jobs_total{outcome=\"converged\"} %d\n", m.jobsConverged.Load())
	fmt.Fprintf(w, "solverd_jobs_total{outcome=\"failed\"} %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "solverd_jobs_total{outcome=\"canceled\"} %d\n", m.jobsCanceled.Load())
	fmt.Fprintf(w, "solverd_jobs_total{outcome=\"rejected\"} %d\n", m.jobsRejected.Load())
	fmt.Fprintf(w, "solverd_jobs_total{outcome=\"drained\"} %d\n", m.jobsDrained.Load())

	fmt.Fprintf(w, "# HELP solverd_batch_width Width of the most recently executed solve batch (1 = solo).\n")
	fmt.Fprintf(w, "# TYPE solverd_batch_width gauge\n")
	fmt.Fprintf(w, "solverd_batch_width %d\n", m.batchWidth.Load())
	fmt.Fprintf(w, "# HELP solverd_jobs_batched_total Jobs executed, by whether their solve was coalesced into a width>1 block solve.\n")
	fmt.Fprintf(w, "# TYPE solverd_jobs_batched_total counter\n")
	fmt.Fprintf(w, "solverd_jobs_batched_total{mode=\"coalesced\"} %d\n", m.jobsCoalesced.Load())
	fmt.Fprintf(w, "solverd_jobs_batched_total{mode=\"solo\"} %d\n", m.jobsSolo.Load())

	fmt.Fprintf(w, "# HELP solverd_jobs_deduped_total Submissions attached to a retained job via their idempotency key.\n")
	fmt.Fprintf(w, "# TYPE solverd_jobs_deduped_total counter\n")
	fmt.Fprintf(w, "solverd_jobs_deduped_total %d\n", m.jobsDeduped.Load())

	fmt.Fprintf(w, "# TYPE solverd_registry_hits_total counter\n")
	fmt.Fprintf(w, "solverd_registry_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "solverd_registry_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(w, "solverd_registry_evictions_total %d\n", m.cacheEvictions.Load())
	fmt.Fprintf(w, "solverd_fabric_leaks_total %d\n", m.fabricLeaks.Load())

	fmt.Fprintf(w, "# HELP solverd_tuner_events_total Stability-tuner activity on method=auto jobs.\n")
	fmt.Fprintf(w, "# TYPE solverd_tuner_events_total counter\n")
	fmt.Fprintf(w, "solverd_tuner_events_total{kind=\"record\"} %d\n", m.tunerRecords.Load())
	fmt.Fprintf(w, "solverd_tuner_events_total{kind=\"warmstart\"} %d\n", m.tunerWarmstarts.Load())
	fmt.Fprintf(w, "solverd_tuner_events_total{kind=\"switch\"} %d\n", m.tunerSwitches.Load())
	fmt.Fprintf(w, "# HELP solverd_tuner_fingerprints Operator fingerprints with a recorded best configuration.\n")
	fmt.Fprintf(w, "# TYPE solverd_tuner_fingerprints gauge\n")
	fmt.Fprintf(w, "solverd_tuner_fingerprints %d\n", mgr.tuner.Len())

	fmt.Fprintf(w, "# TYPE solverd_request_seconds histogram\n")
	m.latency.write(w, "solverd_request_seconds")

	m.obsMu.Lock()
	phases := m.phases
	overlap := m.overlap
	m.obsMu.Unlock()
	fmt.Fprintf(w, "# HELP solverd_phase_seconds Traced per-phase durations aggregated over finished jobs and ranks.\n")
	fmt.Fprintf(w, "# TYPE solverd_phase_seconds histogram\n")
	for _, p := range obs.Phases() {
		st := phases[p]
		var cum int64
		for i, le := range obs.DurationBuckets {
			cum += st.Buckets[i]
			fmt.Fprintf(w, "solverd_phase_seconds_bucket{phase=%q,le=\"%s\"} %d\n",
				p.String(), strconv.FormatFloat(le, 'g', -1, 64), cum)
		}
		cum += st.Buckets[len(obs.DurationBuckets)]
		fmt.Fprintf(w, "solverd_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", p.String(), cum)
		fmt.Fprintf(w, "solverd_phase_seconds_sum{phase=%q} %g\n", p.String(), float64(st.TotalNS)/1e9)
		fmt.Fprintf(w, "solverd_phase_seconds_count{phase=%q} %d\n", p.String(), st.Count)
	}

	fmt.Fprintf(w, "# HELP solverd_overlap_reductions_total Reductions recorded in the overlap ledger, by kind.\n")
	fmt.Fprintf(w, "# TYPE solverd_overlap_reductions_total counter\n")
	fmt.Fprintf(w, "solverd_overlap_reductions_total{kind=\"posted\"} %d\n", overlap.Posted)
	fmt.Fprintf(w, "solverd_overlap_reductions_total{kind=\"blocking\"} %d\n", overlap.Blocking)
	fmt.Fprintf(w, "# HELP solverd_overlap_interval_seconds_total Post-to-complete time summed over non-blocking reductions.\n")
	fmt.Fprintf(w, "# TYPE solverd_overlap_interval_seconds_total counter\n")
	fmt.Fprintf(w, "solverd_overlap_interval_seconds_total %g\n", float64(overlap.IntervalNS)/1e9)
	fmt.Fprintf(w, "solverd_overlap_wait_seconds_total %g\n", float64(overlap.WaitNS)/1e9)
	fmt.Fprintf(w, "solverd_overlap_blocking_wait_seconds_total %g\n", float64(overlap.BlockingWaitNS)/1e9)
	fmt.Fprintf(w, "solverd_overlap_compute_under_seconds_total %g\n", float64(overlap.ComputeUnderNS)/1e9)
	fmt.Fprintf(w, "# HELP solverd_overlap_efficiency Measured hidden fraction: 1 - wait/interval over all posted reductions.\n")
	fmt.Fprintf(w, "# TYPE solverd_overlap_efficiency gauge\n")
	fmt.Fprintf(w, "solverd_overlap_efficiency %g\n", overlap.HiddenFraction())

	m.skewMu.Lock()
	skew := m.skewLast
	skewSolves := m.skewSolves
	m.skewMu.Unlock()
	if skewSolves == 0 {
		// The zero-value report says rank 0; honor the "-1 = none analyzed"
		// contract until noteSkew has stored a real one.
		skew.StragglerRank = -1
	}
	fmt.Fprintf(w, "# HELP solverd_rank_skew Per-rank straggler score of the most recent analyzed multi-rank solve (compute excess + wait deficit + transit excess).\n")
	fmt.Fprintf(w, "# TYPE solverd_rank_skew gauge\n")
	for _, r := range skew.Ranks {
		fmt.Fprintf(w, "solverd_rank_skew{rank=\"%d\"} %g\n", r.Rank, r.Score)
	}
	fmt.Fprintf(w, "# HELP solverd_rank_skew_straggler Rank with the highest straggler score in the most recent analyzed solve (-1 = none analyzed).\n")
	fmt.Fprintf(w, "# TYPE solverd_rank_skew_straggler gauge\n")
	fmt.Fprintf(w, "solverd_rank_skew_straggler %d\n", skew.StragglerRank)
	fmt.Fprintf(w, "# HELP solverd_rank_skew_imbalance Compute load-balance ratio max/mean of the most recent analyzed solve.\n")
	fmt.Fprintf(w, "# TYPE solverd_rank_skew_imbalance gauge\n")
	fmt.Fprintf(w, "solverd_rank_skew_imbalance %g\n", skew.Imbalance)
	fmt.Fprintf(w, "# TYPE solverd_rank_skew_solves_total counter\n")
	fmt.Fprintf(w, "solverd_rank_skew_solves_total %d\n", skewSolves)

	obs.WriteGoRuntimeMetrics(w, "solverd")

	fmt.Fprintf(w, "# HELP solverd_kernel_* Kernel-counter aggregate over finished jobs (trace.Counters).\n")
	m.mu.Lock()
	snap := m.kernels
	m.mu.Unlock()
	snap.WritePrometheus(w, "solverd_kernel", "")
}

// Snapshot is the one-line drain summary flushed through the service log.
func (m *Metrics) Snapshot(mgr *Manager, reg *Registry) string {
	m.mu.Lock()
	k := m.kernels
	m.mu.Unlock()
	return fmt.Sprintf(
		"jobs{converged=%d failed=%d canceled=%d rejected=%d drained=%d deduped=%d} cache{hits=%d misses=%d evictions=%d entries=%d} kernels{%s} recovery{%s}",
		m.jobsConverged.Load(), m.jobsFailed.Load(), m.jobsCanceled.Load(),
		m.jobsRejected.Load(), m.jobsDrained.Load(), m.jobsDeduped.Load(),
		m.cacheHits.Load(), m.cacheMisses.Load(), m.cacheEvictions.Load(), reg.Len(),
		k.String(), k.RecoveryString())
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
