package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDrainAccountsEverySubmission pins the drain critical-section contract
// deterministically: every admission outcome that happened before drain
// completed — accepted (later canceled), queue-full rejected, drain-refused
// — is present in the metrics the final flush reads.
func TestDrainAccountsEverySubmission(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{}, 1)
	s := New(Config{Workers: 1, QueueDepth: 4, testHookBeforeRun: func(j *Job) {
		// Park the worker until the job is cancelled, so queued jobs stay
		// queued and drain must take its deadline path.
		select {
		case running <- struct{}{}:
		default:
		}
		select {
		case <-j.ctx.Done():
		case <-release:
		}
	}})

	spec := SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}}
	var accepted []*Job
	// 1 running + 4 queued fills worker and queue. Wait for the worker to
	// dequeue the first job so the remaining four fit in the queue.
	for i := 0; i < 5; i++ {
		j, err := s.Jobs.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Jobs.Get(j.ID); got != j {
			t.Fatalf("job %s not findable immediately after Submit returned", j.ID)
		}
		accepted = append(accepted, j)
		if i == 0 {
			<-running
		}
	}
	if _, err := s.Jobs.Submit(spec); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("6th submission: got %v, want ErrQueueFull", err)
	}
	if got := s.Metrics.jobsRejected.Load(); got != 1 {
		t.Fatalf("jobsRejected = %d at rejection return, want 1", got)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	drained := make(chan struct{})
	go func() { s.Jobs.Drain(dctx); close(drained) }()

	// Once admissions are observably closed, a refusal must be counted by
	// the time Submit returns.
	for !s.Jobs.Draining() {
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Jobs.Submit(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission during drain: got %v, want ErrDraining", err)
	}
	if got := s.Metrics.jobsDrained.Load(); got != 1 {
		t.Fatalf("jobsDrained = %d at refusal return, want 1", got)
	}

	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not return: a job escaped the deadline cancel sweep")
	}
	for _, j := range accepted {
		if st := j.State(); st != JobCanceled {
			t.Errorf("job %s: state %s after deadline drain, want canceled", j.ID, st)
		}
	}
	if got := s.Metrics.jobsCanceled.Load(); got != int64(len(accepted)) {
		t.Errorf("jobsCanceled = %d in final metrics, want %d", got, len(accepted))
	}
	if q, r := s.Jobs.QueueDepth(), s.Jobs.InFlight(); q != 0 || r != 0 {
		t.Errorf("after drain: %d queued, %d running", q, r)
	}
}

// TestDrainRaceNoOrphanedJobs is the regression for the drain race this PR
// fixed: a job used to be enqueued (visible to a worker) before it was
// registered in the manager's job table, so a submission racing drain start
// could slip past the deadline sweep's List() — unseen, uncancellable — and
// stall drain until the solve finished naturally (or, with a supervisor
// enforcing the drain budget via SIGKILL, forever, losing the final metrics
// flush). With admission and registration in one critical section against
// drain start, every admitted job is sweepable and drain's deadline path is
// bounded.
//
// The test makes the old bug lethal instead of slow: jobs park in the
// pre-run hook until cancelled, so a job the sweep cannot see would hang its
// worker — and Drain — indefinitely.
func TestDrainRaceNoOrphanedJobs(t *testing.T) {
	const rounds = 20
	const submitters = 8
	for round := 0; round < rounds; round++ {
		s := New(Config{Workers: 2, QueueDepth: 16, testHookBeforeRun: func(j *Job) {
			<-j.ctx.Done() // only a cancel sweep (or job cancel) frees the worker
		}})

		var wg sync.WaitGroup
		var acceptedN atomic.Int64
		stop := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					j, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
					if errors.Is(err, ErrDraining) {
						return
					}
					if err == nil {
						_ = j
						acceptedN.Add(1)
					}
				}
			}()
		}

		// Let submissions build, then drain with a short deadline while the
		// submitters are still firing — the racing window this test exists
		// for.
		time.Sleep(2 * time.Millisecond)
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		done := make(chan struct{})
		go func() { s.Jobs.Drain(dctx); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("round %d: drain hung — an admitted job escaped the cancel sweep", round)
		}
		cancel()
		close(stop)
		wg.Wait()

		// Every accepted job must have reached a terminal state and been
		// counted before drain returned (the final flush reads these).
		counted := s.Metrics.jobsCanceled.Load() + s.Metrics.jobsConverged.Load() + s.Metrics.jobsFailed.Load()
		if counted != acceptedN.Load() {
			t.Fatalf("round %d: %d accepted jobs but %d counted in final metrics", round, acceptedN.Load(), counted)
		}
		for _, j := range s.Jobs.List() {
			if st := j.State(); st == JobQueued || st == JobRunning {
				t.Fatalf("round %d: job %s still %s after drain", round, j.ID, st)
			}
		}
	}
}
