package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// routes mounts the HTTP API:
//
//	POST /v1/solve            submit and wait; ?stream=1 streams NDJSON events
//	POST /v1/jobs             submit asynchronously → 202 {"id": ...}
//	GET  /v1/jobs             list retained jobs
//	GET  /v1/jobs/{id}        job status
//	GET  /v1/jobs/{id}/events NDJSON event stream (replay + live)
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /v1/matrices         registry listing (residents + uploads)
//	PUT  /v1/matrices/{name}  upload a MatrixMarket body (plain or gzip)
//	GET  /healthz             liveness; 503 while draining
//	GET  /metrics             Prometheus text format
//	GET  /debug/pprof/...     runtime profiles, only when Config.EnablePprof
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/matrices", s.handleMatrices)
	s.mux.HandleFunc("PUT /v1/matrices/{name}", s.handleUpload)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/tuner", s.handleTuner)
	s.mux.HandleFunc("GET /v1/debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		// net/http/pprof self-registers only on http.DefaultServeMux; the
		// daemon uses its own mux, so the handlers are mounted explicitly —
		// and only when the operator opted in.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// apiError is the JSON error envelope.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// submit decodes a SolveRequest and applies admission control, translating
// the manager's typed errors into 429 + Retry-After (queue full) and 503
// (draining).
func (s *Server) submit(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "bad request body: %v", err)
		return nil, false
	}
	if req.Problem == "" {
		apiError(w, http.StatusBadRequest, "missing \"problem\"")
		return nil, false
	}
	// A traceparent request header is the W3C spelling of the body field;
	// the body wins when both are present (the router pins the per-attempt
	// context there).
	if req.TraceParent == "" {
		req.TraceParent = r.Header.Get("traceparent")
	}
	j, err := s.Jobs.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Retry after roughly one queued job's drain time; 1s floor keeps
		// clients from hammering.
		w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
		apiError(w, http.StatusTooManyRequests, "%v", err)
		return nil, false
	case errors.Is(err, ErrDraining):
		apiError(w, http.StatusServiceUnavailable, "%v", err)
		return nil, false
	case err != nil:
		apiError(w, http.StatusInternalServerError, "%v", err)
		return nil, false
	}
	return j, true
}

// handleSolve is the synchronous path: submit, then either stream every
// event (chunked NDJSON, flushed per event) or block until the terminal
// result and return it as one JSON object.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	j, ok := s.submit(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamJob(w, r, j)
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// Client went away: the job keeps running (it is accepted work),
		// the response is abandoned.
		return
	}
	writeJSON(w, http.StatusOK, s.jobStatus(j, true))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j, ok := s.submit(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": string(j.State())})
}

// JobStatus is the query-side view of a job.
type JobStatus struct {
	ID         string       `json:"id"`
	State      JobState     `json:"state"`
	Request    SolveRequest `json:"request"`
	Method     string       `json:"method,omitempty"`
	Converged  bool         `json:"converged"`
	Iterations int          `json:"iterations,omitempty"`
	// RelRes passes through saneRel like every event field: a non-finite
	// final residual is reported as Diverged with RelRes omitted, keeping
	// the status endpoint encodable for every terminal state.
	RelRes   float64   `json:"relres,omitempty"`
	Diverged bool      `json:"diverged,omitempty"`
	Error    string    `json:"error,omitempty"`
	XHash    string    `json:"x_hash,omitempty"`
	X        []float64 `json:"x,omitempty"`
	Counters any       `json:"counters,omitempty"`
	// BatchWidth is how many jobs the solve was coalesced with (itself
	// included) when the manager ran it as a block solve; omitted for solo
	// solves and jobs still queued.
	BatchWidth int `json:"batch_width,omitempty"`
	// TraceID is the distributed trace the job belongs to (joined from the
	// client's traceparent, or originated by this daemon).
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Server) jobStatus(j *Job, includeCounters bool) JobStatus {
	st := JobStatus{ID: j.ID, State: j.State(), Request: j.Req, TraceID: j.TraceID()}
	if w := j.BatchWidth(); w > 1 {
		st.BatchWidth = w
	}
	res, err := j.Result()
	if res != nil {
		st.Method = res.Method
		st.Converged = res.Converged
		st.Iterations = res.Iterations
		st.RelRes, st.Diverged = saneRel(res.RelRes)
		st.Diverged = st.Diverged || res.Diverged
		if res.X != nil {
			st.XHash = XHash(res.X)
			if j.Req.IncludeX {
				st.X = res.X
			}
		}
	}
	if err != nil {
		st.Error = err.Error()
	}
	if includeCounters {
		c := j.Counters()
		st.Counters = &c
	}
	return st
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs.List()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.jobStatus(j, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *Job {
	j := s.Jobs.Get(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFromPath(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.jobStatus(j, true))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFromPath(w, r); j != nil {
		j.Cancel()
		writeJSON(w, http.StatusOK, map[string]string{"id": j.ID, "state": string(j.State())})
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFromPath(w, r); j != nil {
		s.streamJob(w, r, j)
	}
}

// streamJob writes the job's events as chunked NDJSON — one JSON object per
// line, flushed per event — until the terminal result event (the last line)
// or client disconnect.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	events, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// MatricesResponse lists the registry state.
type MatricesResponse struct {
	Builtin  []string       `json:"builtin"`
	Uploads  []string       `json:"uploads"`
	Resident []EntrySummary `json:"resident"`
}

func (s *Server) handleMatrices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, MatricesResponse{
		Builtin:  []string{"poisson125", "poisson7", "poisson5", "ecology2", "thermal2", "serena"},
		Uploads:  s.Registry.Uploads(),
		Resident: s.Registry.Summaries(),
	})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rows, nnz, err := s.Registry.RegisterUpload(name, http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "n": rows, "nnz": nnz})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	status := "ok"
	if s.Jobs.Draining() {
		code, status = http.StatusServiceUnavailable, "draining"
	}
	body := map[string]any{
		"status":   status,
		"queued":   s.Jobs.QueueDepth(),
		"inflight": s.Jobs.InFlight(),
	}
	if s.cfg.ShardID != "" {
		body["shard"] = s.cfg.ShardID
	}
	writeJSON(w, code, body)
}

// ClusterInfo is one shard's view of cluster membership: its own identity
// plus the registered peers. A router bootstrapping with -discover reads
// this from any one shard to learn the full shard set.
type ClusterInfo struct {
	Shard string            `json:"shard,omitempty"`
	Peers map[string]string `json:"peers,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ClusterInfo{Shard: s.cfg.ShardID, Peers: s.cfg.Peers})
}

// handleTuner exposes the stability tuner's state: every operator
// fingerprint with its recorded best configuration and the evidence that
// produced it. Empty until an auto job has finished.
func (s *Server) handleTuner(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs.Tuner().Snapshot())
}

// handleFlight dumps the flight recorder: recent completed job traces
// (spans + per-rank summaries) and structured events, oldest first.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs.Flight().Dump())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Metrics.WritePrometheus(w, s.Jobs, s.Registry)
}
