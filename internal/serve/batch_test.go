package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/par"
)

// soloHashes solves each seed on a coalescing-off manager and returns the
// iterate fingerprints — the unbatched ground truth batch runs are compared
// against.
func soloHashes(t *testing.T, req SolveRequest, seeds []uint64) map[uint64]string {
	t.Helper()
	s := New(Config{Workers: 1, QueueDepth: len(seeds) + 1})
	defer s.Drain(context.Background())
	out := map[uint64]string{}
	for _, seed := range seeds {
		r := req
		r.RHSSeed = seed
		j, err := s.Jobs.Submit(r)
		if err != nil {
			t.Fatalf("solo submit seed %d: %v", seed, err)
		}
		<-j.Done()
		res, err := j.Result()
		if err != nil || res == nil || !res.Converged {
			t.Fatalf("solo seed %d did not converge: %v", seed, err)
		}
		if w := j.BatchWidth(); w != 1 {
			t.Fatalf("solo seed %d ran at width %d", seed, w)
		}
		out[seed] = XHash(res.X)
	}
	return out
}

// TestCoalesceDeterministic drives the manager directly with one worker and
// a plug job held in the pre-run test hook, so the coalescible jobs queue up
// behind it and are provably taken as ONE batch: every job reports the full
// width, converges, and hashes bit-identical to its solo baseline; a batch
// member whose deadline expired while queued comes back canceled without
// disturbing the others.
func TestCoalesceDeterministic(t *testing.T) {
	req := SolveRequest{
		ProblemSpec: ProblemSpec{Problem: "poisson125", N: 8},
		Method:      "pcg",
	}
	seeds := []uint64{11, 22, 33, 44}
	want := soloHashes(t, req, seeds)

	release := make(chan struct{})
	holding := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 16, CoalesceWidth: 8}
	cfg.testHookBeforeRun = func(j *Job) {
		if j.Req.Method == "pscg" { // the plug
			close(holding)
			<-release
		}
	}
	s := New(cfg)
	defer s.Drain(context.Background())

	plug := req
	plug.Method = "pscg" // different coalesce key: never joins the batch
	if _, err := s.Jobs.Submit(plug); err != nil {
		t.Fatal(err)
	}
	<-holding

	var jobs []*Job
	for _, seed := range seeds {
		r := req
		r.RHSSeed = seed
		j, err := s.Jobs.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// One more batch member with an already-blown deadline: it must finish
	// canceled before the gang forms, and must not shrink the others' width
	// below the live member count.
	doomed := req
	doomed.RHSSeed = 99
	doomed.TimeoutMS = 1
	dj, err := s.Jobs.Submit(doomed)
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	for i, j := range jobs {
		<-j.Done()
		res, err := j.Result()
		if err != nil || res == nil || !res.Converged {
			t.Fatalf("batch job %d: not converged: %v", i, err)
		}
		if w := j.BatchWidth(); w != len(seeds) {
			t.Errorf("batch job %d: width %d, want %d", i, w, len(seeds))
		}
		if got := XHash(res.X); got != want[seeds[i]] {
			t.Errorf("batch job %d (seed %d): x_hash %s, want solo %s", i, seeds[i], got, want[seeds[i]])
		}
	}
	<-dj.Done()
	if st := dj.State(); st != JobCanceled {
		t.Errorf("deadline-blown batch member: state %s, want canceled", st)
	}
	if got := s.Metrics.jobsCoalesced.Load(); got != int64(len(seeds)) {
		t.Errorf("jobsCoalesced = %d, want %d", got, len(seeds))
	}
}

// TestBatchSmoke is the end-to-end coalescing acceptance run (`make
// batch-smoke` runs it under the race detector): a real daemon on an
// ephemeral port, a held worker so a burst of 24 same-key jobs with distinct
// seeded right-hand sides piles up, then three deterministic batches of
// eight — zero lost jobs, every iterate hash-identical to its unbatched
// baseline, the batch-width metrics visible on /metrics, a clean drain and
// no goroutine leaks.
func TestBatchSmoke(t *testing.T) {
	par.Default()
	runtime.GC()
	base := runtime.NumGoroutine()

	req := SolveRequest{
		ProblemSpec: ProblemSpec{Problem: "poisson125", N: 8},
		Method:      "pcg",
	}
	const burst = 24
	const width = 8
	seeds := make([]uint64, burst)
	for i := range seeds {
		seeds[i] = uint64(1000 + i)
	}
	want := soloHashes(t, req, seeds)

	release := make(chan struct{})
	holding := make(chan struct{})
	cfg := Config{
		Workers:        1,
		QueueDepth:     burst + 8,
		CoalesceWidth:  width,
		CoalesceWindow: time.Millisecond,
	}
	cfg.testHookBeforeRun = func(j *Job) {
		if j.Req.Method == "pscg" {
			close(holding)
			<-release
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	post := func(r SolveRequest) string {
		body, _ := json.Marshal(r)
		resp, err := client.Post(url+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatalf("submit decode: %v", err)
		}
		return acc.ID
	}

	plug := req
	plug.Method = "pscg"
	post(plug)
	<-holding

	ids := make([]string, burst)
	for i, seed := range seeds {
		r := req
		r.RHSSeed = seed
		ids[i] = post(r)
	}
	close(release)

	// Poll each job to its terminal state over the HTTP plane.
	deadline := time.Now().Add(30 * time.Second)
	for i, id := range ids {
		for {
			resp, err := client.Get(url + "/v1/jobs/" + id)
			if err != nil {
				t.Fatalf("status %s: %v", id, err)
			}
			var st JobStatus
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("status decode %s: %v", id, err)
			}
			if st.State == JobConverged || st.State == JobFailed || st.State == JobCanceled {
				if st.State != JobConverged {
					t.Fatalf("job %s (seed %d): terminal state %s (%s)", id, seeds[i], st.State, st.Error)
				}
				if st.BatchWidth != width {
					t.Errorf("job %s: batch_width %d, want %d", id, st.BatchWidth, width)
				}
				if st.XHash != want[seeds[i]] {
					t.Errorf("job %s (seed %d): x_hash %s, want solo %s", id, seeds[i], st.XHash, want[seeds[i]])
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in state %s", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// The coalescing totals must be visible on the metrics plane.
	mr, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := mr.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	mr.Body.Close()
	out := sb.String()
	for _, wantLine := range []string{
		fmt.Sprintf("solverd_batch_width %d", width),
		fmt.Sprintf(`solverd_jobs_batched_total{mode="coalesced"} %d`, burst),
		`solverd_jobs_batched_total{mode="solo"} 1`,
	} {
		if !strings.Contains(out, wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}

	tr.CloseIdleConnections()
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Drain")
	}

	tr.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		}
		if time.Now().After(leakDeadline) {
			var dump strings.Builder
			pprof.Lookup("goroutine").WriteTo(&dump, 1)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), base, dump.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
