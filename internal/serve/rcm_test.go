package serve

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/partition"
	"repro/internal/sparse"
)

// shuffledLap2DMM builds a 2D 5-point Laplacian on an nx×ny grid under a
// random row relabeling — the kind of ordering an uploaded unstructured
// matrix arrives in — serialized as symmetric MatrixMarket (lower triangle).
func shuffledLap2DMM(nx, ny int, seed int64) string {
	n := nx * ny
	relabel := rand.New(rand.NewSource(seed)).Perm(n)
	id := func(x, y int) int { return relabel[y*nx+x] }
	var ents []string
	nnz := 0
	add := func(i, j int, v float64) {
		if j > i {
			return // lower triangle carries the symmetric pair
		}
		ents = append(ents, fmt.Sprintf("%d %d %g", i+1, j+1, v))
		nnz++
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			add(i, i, 4)
			if x > 0 {
				add(i, id(x-1, y), -1)
			}
			if x < nx-1 {
				add(i, id(x+1, y), -1)
			}
			if y > 0 {
				add(i, id(x, y-1), -1)
			}
			if y < ny-1 {
				add(i, id(x, y+1), -1)
			}
		}
	}
	return fmt.Sprintf("%%%%MatrixMarket matrix coordinate real symmetric\n%d %d %d\n%s\n",
		n, n, nnz, strings.Join(ents, "\n"))
}

// TestUploadRCMReordersAndRoundTrips is the RCM acceptance gate: an uploaded
// matrix is RCM-reordered at registry build time — measurably shrinking
// bandwidth and row-block halo volume — while a daemon solve still returns
// its iterate in the client's original row ordering, matching a direct
// un-reordered solve.
func TestUploadRCMReordersAndRoundTrips(t *testing.T) {
	mm := shuffledLap2DMM(12, 11, 3)

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/matrices/shuffled", strings.NewReader(mm))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	// Inspect the built entry: the registry must hold the reordered system.
	entry, err := s.Jobs.reg.Acquire(ProblemSpec{Problem: "shuffled"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Jobs.reg.Release(entry)
	pr := entry.Problem()
	orig, err := sparse.ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Perm == nil {
		t.Fatal("upload was not reordered")
	}
	if got, want := pr.A.Bandwidth(), orig.Bandwidth(); got >= want {
		t.Fatalf("bandwidth %d not reduced from %d", got, want)
	}
	const ranks = 4
	halOrig := partition.ComputeStats(orig, partition.RowBlockByNNZ(orig, ranks)).TotalHaloCols
	halRCM := partition.ComputeStats(pr.A, partition.RowBlockByNNZ(pr.A, ranks)).TotalHaloCols
	if halRCM >= halOrig {
		t.Fatalf("halo volume %d not reduced from %d", halRCM, halOrig)
	}
	t.Logf("bandwidth %d→%d, halo volume (P=%d) %d→%d",
		orig.Bandwidth(), pr.A.Bandwidth(), ranks, halOrig, halRCM)

	// Round trip through the job runner, seq and comm.
	for _, ranksReq := range []int{0, ranks} {
		st := decodeStatus(t, postJSON(t, ts.URL+"/v1/solve", SolveRequest{
			ProblemSpec: ProblemSpec{Problem: "shuffled"},
			Method:      "pipe-pscg", PC: "jacobi", IncludeX: true, Ranks: ranksReq,
		}))
		if st.State != JobConverged {
			t.Fatalf("ranks=%d: state=%s error=%q", ranksReq, st.State, st.Error)
		}

		// Reference: the same solve on the un-reordered system.
		ref := bench.Problem{Name: "ref", A: orig, B: grid.OnesRHS(orig), RelTol: 1e-5}
		pc, err := bench.MakePC("jacobi", ref)
		if err != nil {
			t.Fatal(err)
		}
		solver, err := solverFor("pipe-pscg")
		if err != nil {
			t.Fatal(err)
		}
		opt := bench.DefaultOptions(ref)
		opt.S = 3
		res, err := solver(engine.NewSeq(ref.A, pc), ref.B, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("reference solve did not converge")
		}

		// Same outcome tier, and the un-permuted iterate solves the original
		// system: both are rtol-accurate solutions of one SPD system, so they
		// agree to solver accuracy (not bitwise — the orderings differ).
		if len(st.X) != len(res.X) {
			t.Fatalf("X length %d vs %d", len(st.X), len(res.X))
		}
		var maxDiff, maxRef float64
		for i := range st.X {
			maxDiff = math.Max(maxDiff, math.Abs(st.X[i]-res.X[i]))
			maxRef = math.Max(maxRef, math.Abs(res.X[i]))
		}
		if maxDiff > 1e-3*maxRef {
			t.Fatalf("ranks=%d: un-permuted iterate differs: max |Δ| = %g (ref %g)",
				ranksReq, maxDiff, maxRef)
		}
	}
}
