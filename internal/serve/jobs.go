package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/krylov"
	"repro/internal/obs"
	"repro/internal/trace"
)

// SolveRequest is a job submission. Zero fields take solver defaults: method
// "ladder" (the PR-2 resilience ladder — degrade, don't fail), PC "jacobi",
// s=3, the problem's paper tolerance, MaxIter 100000, one rank (the
// sequential engine; Ranks > 1 runs the goroutine-rank comm runtime
// in-process on the entry's cached partition).
type SolveRequest struct {
	ProblemSpec
	Method    string  `json:"method,omitempty"`
	PC        string  `json:"pc,omitempty"`
	S         int     `json:"s,omitempty"`
	RelTol    float64 `json:"rtol,omitempty"`
	MaxIter   int     `json:"maxiter,omitempty"`
	Ranks     int     `json:"ranks,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
	// ReplaceEvery sets the residual-replacement cadence for the methods that
	// honor it (pipe-m-cg-rr, pipe-pr-cg, pipecg): every ReplaceEvery
	// iterations the recurrence residual is recomputed from the true residual.
	// Zero means the method's own default. Ignored for method "auto", where
	// the tuner owns the cadence.
	ReplaceEvery int `json:"replace_every,omitempty"`
	// IncludeX asks for the full solution vector in the result event.
	// encoding/json round-trips float64 exactly, so the received iterate is
	// bit-identical to the solver's.
	IncludeX bool `json:"include_x,omitempty"`
	// JobKey is a client-supplied idempotency key. Submitting a second job
	// with the key of a retained job attaches to that job instead of running
	// a new solve — the dedup that makes retry-after-failure safe: a cluster
	// router (cmd/solverouter) that lost a shard's response mid-flight can
	// resubmit without risking a double solve, and a resubmission that lands
	// on the shard that already accepted the first attempt simply returns it.
	// Keys are forgotten when their job leaves retention (Config.RetainJobs).
	JobKey string `json:"job_key,omitempty"`
	// RHSSeed, when non-zero, replaces the problem's canonical right-hand
	// side with a deterministic synthetic one drawn from a splitmix64 stream
	// seeded here (uniform in [-1,1), in the operator's row ordering). Two
	// jobs with the same seed solve the same system — on any daemon, batched
	// or solo — so clients can issue many distinct solves against one
	// operator and still compare iterates bitwise across paths.
	RHSSeed uint64 `json:"rhs_seed,omitempty"`
	// TraceParent carries the W3C traceparent of the submitting span, making
	// this job a child span of the client's trace. The router rewrites it per
	// delivery attempt so each attempt is its own child span; a traceparent
	// request header is an equivalent spelling (the body field wins when both
	// are present). Absent or malformed, the daemon originates a fresh trace.
	// Purely observational — never part of coalesce or idempotency keys, and
	// bit-neutral to the solve.
	TraceParent string `json:"traceparent,omitempty"`
}

func (r SolveRequest) withDefaults() SolveRequest {
	if r.Method == "" {
		r.Method = "ladder"
	}
	if r.PC == "" {
		r.PC = "jacobi"
	}
	if r.S <= 0 {
		r.S = 3
	}
	if r.MaxIter <= 0 {
		r.MaxIter = 100000
	}
	if r.Ranks <= 0 {
		r.Ranks = 1
	}
	return r
}

// JobState is a job's lifecycle phase. Terminal states are JobConverged,
// JobFailed and JobCanceled; every accepted job reaches exactly one of them.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobConverged JobState = "converged"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Event is one NDJSON line of a job's progress stream.
type Event struct {
	Type string `json:"type"` // queued | start | progress | result
	Job  string `json:"job"`
	// TraceID is the distributed trace this job belongs to; emit stamps it
	// on every event so a relayed NDJSON stream stays attributable across
	// router failover.
	TraceID string `json:"trace_id,omitempty"`

	// progress fields
	Iteration int `json:"iteration,omitempty"`
	// RelRes carries the residual norm of the check. A solver can record a
	// non-finite norm (NaN/Inf) right before its divergence guard stops the
	// run; encoding/json rejects non-finite floats, so the event boundary
	// sanitizes them: RelRes is omitted and Diverged is set instead (see
	// saneRel). The event is delivered either way — pre-audit, the encoder
	// error silently dropped it and tore the NDJSON stream down mid-solve.
	RelRes      float64 `json:"relres,omitempty"`
	ReduceIndex int     `json:"reduce_index,omitempty"`
	// Diverged marks a residual whose norm was non-finite at this check (or
	// a result whose final residual was): the recurrence exploded and the
	// divergence guard is about to stop (or has stopped) the run.
	Diverged bool `json:"diverged,omitempty"`
	// Recoveries mirrors trace.Counters.RecoveryEvents() at the time of the
	// check — a step in this series marks a recovery event.
	Recoveries int `json:"recoveries,omitempty"`

	// result fields
	State      JobState  `json:"state,omitempty"`
	Method     string    `json:"method,omitempty"`
	Converged  bool      `json:"converged,omitempty"`
	Iterations int       `json:"iterations,omitempty"`
	Error      string    `json:"error,omitempty"`
	XHash      string    `json:"x_hash,omitempty"`
	X          []float64 `json:"x,omitempty"`
	// OverlapEfficiency is the measured hidden fraction over the job's
	// non-blocking reductions (1 - wait/interval, from the overlap ledger).
	// Present on the result event when the solve posted at least one
	// non-blocking reduction; a purely blocking method reports nothing to
	// hide and the field is omitted.
	OverlapEfficiency float64 `json:"overlap_efficiency,omitempty"`
	// BatchWidth is the number of jobs this job's solve was coalesced with
	// (itself included) when the manager ran it as part of a block solve.
	// Present on start and result events; 1 (omitted) for a solo solve.
	BatchWidth int `json:"batch_width,omitempty"`
	// TunedMethod is the concrete method the stability tuner selected for a
	// job submitted with method "auto"; Method stays "auto" on such jobs so a
	// client can tell delegated selection from an explicit request.
	TunedMethod string `json:"tuned_method,omitempty"`
	// TunerWarmStart marks an auto job whose configuration came from a
	// recorded fingerprint rather than the cold-start default.
	TunerWarmStart bool `json:"tuner_warm_start,omitempty"`
	// DriftRatio is the max true/recurrence residual ratio the out-of-band
	// drift probe measured during an auto job's solve (omitted when the job
	// ran without a probe, e.g. on the multi-rank path).
	DriftRatio float64 `json:"drift_ratio,omitempty"`
}

// maxRetainedEvents bounds the per-job event ring replayed to late
// subscribers; live subscribers see every event their channel keeps up with.
const maxRetainedEvents = 1024

// Job is one accepted solve.
type Job struct {
	ID  string       `json:"id"`
	Req SolveRequest `json:"request"`

	mu         sync.Mutex
	state      JobState
	events     []Event // ring of the most recent events
	dropped    int     // ring overwrites
	subs       map[chan Event]struct{}
	res        *krylov.Result
	err        error
	counters   trace.Counters
	obsSum     obs.Summary   // merged trace summary across the job's ranks
	batchWidth int           // coalesced solve width (1 = solo)
	tune       *tuneDecision // set when the tuner resolved an auto job
	driftRatio float64       // max true/recurrence ratio from the drift probe

	// Distributed-trace state. tctx is assigned once in Submit before the
	// job is enqueued and immutable after, so it is readable without mu.
	tctx       obs.TraceContext // this job's span in its trace
	parentSpan string           // incoming parent span id (hex), "" for daemon-originated traces
	runStart   time.Time        // worker picked the job up (queue-wait span end)
	solveStart time.Time        // engine solve began (solve span start)
	coalesceAt time.Time        // head job's coalesce-window wait start (zero if none)
	coalesceNS int64            // head job's coalesce-window wait duration
	anchorNS   int64            // wall Unix ns the solve tracers' clock 0 maps to
	rankSums   []obs.Summary    // per-rank summaries (flight recorder + skew)
	skew       *obs.SkewReport  // multi-rank skew analysis, nil for solo solves

	ctx       context.Context
	cancel    context.CancelFunc
	submitted time.Time
	done      chan struct{}
}

// TraceID returns the hex trace ID of the job's distributed trace.
func (j *Job) TraceID() string {
	if !j.tctx.Valid() {
		return ""
	}
	return j.tctx.TraceID.String()
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the solver result and error once the job is done.
func (j *Job) Result() (*krylov.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Counters returns the job's kernel counters (complete once done).
func (j *Job) Counters() trace.Counters {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.counters
}

// BatchWidth returns how many jobs this job's solve shared its engine with
// (itself included); 1 for a solo solve, 0 while still queued.
func (j *Job) BatchWidth() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.batchWidth
}

// TraceSummary returns the job's merged phase/overlap trace summary across
// all ranks (complete once done).
func (j *Job) TraceSummary() obs.Summary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.obsSum
}

// Cancel asks a queued or running job to stop; it ends in JobCanceled.
func (j *Job) Cancel() { j.cancel() }

// tuneDecision returns the tuner's decision for an auto job, nil otherwise.
func (j *Job) tuneDecision() *tuneDecision {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tune
}

// effectiveMethod is the method the job actually runs: the tuner's selection
// for an auto job (valid once the decision is made, at run start), the
// request's method otherwise.
func (j *Job) effectiveMethod() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.tune != nil {
		return j.tune.Method
	}
	return j.Req.Method
}

// emit records ev in the ring and fans it out to subscribers without
// blocking: a subscriber that falls behind loses progress events, never the
// terminal result (Subscribe replays the ring, and the result is always
// retained as the final ring entry).
func (j *Job) emit(ev Event) {
	ev.TraceID = j.TraceID()
	j.mu.Lock()
	if len(j.events) >= maxRetainedEvents {
		copy(j.events, j.events[1:])
		j.events = j.events[:len(j.events)-1]
		j.dropped++
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// Subscribe returns a channel that first replays the retained events and
// then delivers live ones; call the returned cancel to unsubscribe. The
// channel is closed after the terminal result event is delivered.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, maxRetainedEvents+64)
	j.mu.Lock()
	for _, ev := range j.events {
		ch <- ev // buffered at ring capacity: cannot block
	}
	terminal := j.state == JobConverged || j.state == JobFailed || j.state == JobCanceled
	if terminal {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if j.subs == nil {
		j.subs = map[chan Event]struct{}{}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// finish moves the job to its terminal state, emits the result event and
// closes every subscriber.
func (j *Job) finish(state JobState, ev Event) {
	ev.TraceID = j.TraceID()
	j.mu.Lock()
	j.state = state
	if len(j.events) >= maxRetainedEvents {
		copy(j.events, j.events[1:])
		j.events = j.events[:len(j.events)-1]
	}
	j.events = append(j.events, ev)
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for ch := range subs {
		// The result must arrive even on a full channel; the buffer is
		// sized past the ring, so this cannot block a well-formed
		// subscriber, and a torn-down one is drained by its canceler.
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	close(j.done)
}

// Submission errors, mapped by the HTTP plane to 429 and 503.
var (
	ErrQueueFull = errors.New("serve: submission queue full")
	ErrDraining  = errors.New("serve: draining, not accepting jobs")
)

// Manager owns the bounded submission queue and the solve worker pool.
//
// The queue is an explicit slice under its own mutex+cond rather than a
// channel: a worker taking work inspects the whole backlog, not just the
// head, so it can steal every pending job that coalesces with the one it
// popped (same operator, method, PC, s and tolerance) and run them as one
// block solve. Lock order where locks nest: drainMu > mu > qmu.
type Manager struct {
	cfg    Config
	reg    *Registry
	met    *Metrics
	tuner  *Tuner
	ids    *obs.IDGen          // trace/span ID generator (seeded; deterministic in tests)
	flight *obs.FlightRecorder // ring of recent completed job traces + events

	qmu      sync.Mutex
	qcond    *sync.Cond
	pending  []*Job // FIFO backlog awaiting a worker
	quitting bool   // workers exit once the backlog is empty

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string          // submission order, for listing and retention
	byKey  map[string]string // idempotency JobKey → job ID, within retention
	nextID int

	inflight  sync.WaitGroup // queued + running jobs
	workersWG sync.WaitGroup
	running   chan struct{} // semaphore-as-gauge: len == busy workers

	drainMu  sync.Mutex
	draining bool
}

// NewManager starts the worker pool.
func NewManager(cfg Config, reg *Registry, met *Metrics) *Manager {
	seed := cfg.TraceSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	m := &Manager{
		cfg:     cfg,
		reg:     reg,
		met:     met,
		tuner:   NewTuner(met),
		ids:     obs.NewIDGen(seed),
		flight:  obs.NewFlightRecorder("solverd", cfg.ShardID, cfg.FlightJobs, cfg.FlightEvents),
		jobs:    map[string]*Job{},
		byKey:   map[string]string{},
		running: make(chan struct{}, cfg.Workers),
	}
	m.qcond = sync.NewCond(&m.qmu)
	m.workersWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// QueueDepth returns the number of jobs waiting for a worker.
func (m *Manager) QueueDepth() int {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return len(m.pending)
}

// InFlight returns the number of jobs currently executing.
func (m *Manager) InFlight() int { return len(m.running) }

// Workers returns the worker-pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Tuner returns the stability auto-selector backing method "auto".
func (m *Manager) Tuner() *Tuner { return m.tuner }

// Flight returns the manager's flight recorder (never nil).
func (m *Manager) Flight() *obs.FlightRecorder { return m.flight }

// Draining reports whether admissions are closed.
func (m *Manager) Draining() bool {
	m.drainMu.Lock()
	defer m.drainMu.Unlock()
	return m.draining
}

// Submit applies admission control and enqueues the job: ErrDraining during
// shutdown, ErrQueueFull when the bounded queue has no room (the HTTP plane
// maps these to 503 and 429 + Retry-After). A request carrying the JobKey of
// a retained job is deduplicated: the existing job is returned (nil error)
// and no new solve runs.
//
// Admission, rejection accounting, dedup and registration are ONE critical
// section against drain start. Two real races hid in the seams of the old
// multi-lock version:
//
//   - A job could be enqueued (visible to a worker) before it was registered
//     in m.jobs. Drain's deadline sweep cancels via List(), so a job admitted
//     in that window was invisible to the sweep and ran to natural completion
//     — drain overran its budget, and under a supervisor that enforces the
//     budget with SIGKILL the final metrics flush never happened.
//   - The rejected/drained counters were incremented after the critical
//     section, so a rejection that raced drain start could land after the
//     final flush and vanish from it.
//
// Now a submission either completes entirely before Drain observes
// `draining`, or observes it and is rejected — in both cases with its
// side effects (registration, counters) already visible.
func (m *Manager) Submit(req SolveRequest) (*Job, error) {
	// AutoTuneDefault changes the empty-method default from the resilience
	// ladder to the stability tuner; an explicit method always wins. Resolved
	// before withDefaults so the latter's "ladder" fallback never fires.
	if req.Method == "" && m.cfg.AutoTuneDefault {
		req.Method = MethodAuto
	}
	req = req.withDefaults()

	m.drainMu.Lock()
	if m.draining {
		m.met.jobsDrained.Add(1)
		m.drainMu.Unlock()
		return nil, ErrDraining
	}
	m.mu.Lock()
	if req.JobKey != "" {
		if id, ok := m.byKey[req.JobKey]; ok {
			if dup := m.jobs[id]; dup != nil {
				m.met.jobsDeduped.Add(1)
				m.mu.Unlock()
				m.drainMu.Unlock()
				return dup, nil
			}
			delete(m.byKey, req.JobKey) // job fell out of retention
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		Req:       req,
		state:     JobQueued,
		ctx:       ctx,
		cancel:    cancel,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	// Join the client's trace (the job becomes a child span) or originate a
	// fresh one. Assigned before the job is enqueued: a fast worker may
	// start solving before Submit returns.
	if parent, ok := obs.ParseTraceparent(req.TraceParent); ok {
		j.tctx = m.ids.Child(parent)
		j.parentSpan = parent.SpanID.String()
	} else {
		j.tctx = m.ids.NewTrace()
	}
	m.nextID++
	if m.cfg.ShardID != "" {
		j.ID = fmt.Sprintf("%s-job-%d", m.cfg.ShardID, m.nextID)
	} else {
		j.ID = fmt.Sprintf("job-%d", m.nextID)
	}
	m.inflight.Add(1)
	m.qmu.Lock()
	if len(m.pending) >= m.cfg.QueueDepth {
		m.qmu.Unlock()
		m.inflight.Done()
		m.met.jobsRejected.Add(1)
		m.mu.Unlock()
		m.drainMu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	m.pending = append(m.pending, j)
	m.qcond.Signal()
	m.qmu.Unlock()
	// The queued event is recorded before the job becomes findable — no
	// subscriber exists yet, so it cannot interleave after a fast worker's
	// start/result events in anyone's stream.
	j.emit(Event{Type: "queued", Job: j.ID, State: JobQueued})
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	if req.JobKey != "" {
		m.byKey[req.JobKey] = j.ID
	}
	m.trimLocked()
	m.mu.Unlock()
	m.drainMu.Unlock()
	return j, nil
}

// trim drops the oldest finished jobs beyond the retention bound. It runs on
// every submission AND every job completion: trimLocked stops at a live
// oldest job (never forget running work), so a backlog that finishes after
// the last submission — every drain, every Kill — would otherwise retain
// jobs and their idempotency keys past the bound forever.
func (m *Manager) trim() {
	m.mu.Lock()
	m.trimLocked()
	m.mu.Unlock()
}

// trimLocked drops the oldest finished jobs beyond the retention bound,
// together with their idempotency keys.
func (m *Manager) trimLocked() {
	for len(m.order) > m.cfg.RetainJobs {
		id := m.order[0]
		j := m.jobs[id]
		if j != nil {
			if st := j.State(); st == JobQueued || st == JobRunning {
				return // never forget a live job
			}
			if k := j.Req.JobKey; k != "" && m.byKey[k] == id {
				delete(m.byKey, k)
			}
			delete(m.jobs, id)
		}
		m.order = m.order[1:]
	}
}

// Get returns a job by id.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// List returns retained jobs in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil {
			out = append(out, j)
		}
	}
	return out
}

// coalescible reports whether a request may join a block solve: coalescing
// runs on the sequential engine, so only single-rank jobs qualify. Auto jobs
// never coalesce: the tuner resolves each one against the fingerprint record
// at run time, so two queued auto jobs are not guaranteed to run the same
// method — the one property a shared block solve cannot survive.
func coalescible(r SolveRequest) bool { return r.Ranks <= 1 && r.Method != MethodAuto }

// coalesceKey groups requests that can share one block solve: same operator,
// method, preconditioner, s, tolerance, iteration budget and replacement
// cadence (a gang shares one solver loop, so a per-column cadence cannot be
// honored). RHSSeed is deliberately excluded — distinct right-hand sides are
// exactly what a block solve batches — as are TimeoutMS (deadlines stay per
// job under the gang's cancellation wrappers) and IncludeX/JobKey (response
// shaping).
func coalesceKey(r SolveRequest) string {
	return fmt.Sprintf("%s|%s|%s|%d|%g|%d|%d",
		r.ProblemSpec.Key(), r.Method, r.PC, r.S, r.RelTol, r.MaxIter, r.ReplaceEvery)
}

// stealLocked moves every pending job that coalesces with key into batch, in
// FIFO order, up to the configured width. Caller holds qmu.
func (m *Manager) stealLocked(batch []*Job, key string) []*Job {
	kept := m.pending[:0]
	for _, j := range m.pending {
		if len(batch) < m.cfg.CoalesceWidth && coalescible(j.Req) && coalesceKey(j.Req) == key {
			batch = append(batch, j)
		} else {
			kept = append(kept, j)
		}
	}
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = nil // drop stolen jobs' pointers from the backlog array
	}
	m.pending = kept
	return batch
}

// takeBatch blocks until work or shutdown: it pops the backlog head and,
// when coalescing is on, steals every compatible pending job (optionally
// waiting one CoalesceWindow for stragglers when the batch is not yet full).
// Returns nil when the manager is quitting and the backlog is empty.
func (m *Manager) takeBatch() []*Job {
	m.qmu.Lock()
	for len(m.pending) == 0 && !m.quitting {
		m.qcond.Wait()
	}
	if len(m.pending) == 0 {
		m.qmu.Unlock()
		return nil
	}
	head := m.pending[0]
	m.pending[0] = nil
	m.pending = m.pending[1:]
	batch := []*Job{head}
	if m.cfg.CoalesceWidth > 1 && coalescible(head.Req) {
		key := coalesceKey(head.Req)
		batch = m.stealLocked(batch, key)
		if len(batch) < m.cfg.CoalesceWidth && m.cfg.CoalesceWindow > 0 {
			// Half-open window: wait once for stragglers, then go with what
			// arrived. Bounded, so a lone job's latency cost is one window.
			// The head job paid the wait; stamp it so its trace grows a
			// coalesce_wait span.
			m.qmu.Unlock()
			waitStart := time.Now()
			time.Sleep(m.cfg.CoalesceWindow)
			head.mu.Lock()
			head.coalesceAt = waitStart
			head.coalesceNS = time.Since(waitStart).Nanoseconds()
			head.mu.Unlock()
			m.qmu.Lock()
			batch = m.stealLocked(batch, key)
		}
	}
	m.qmu.Unlock()
	return batch
}

func (m *Manager) worker() {
	defer m.workersWG.Done()
	for {
		batch := m.takeBatch()
		if batch == nil {
			return
		}
		m.running <- struct{}{}
		if m.cfg.testHookBeforeRun != nil {
			for _, j := range batch {
				m.cfg.testHookBeforeRun(j)
			}
		}
		if len(batch) == 1 {
			m.run(batch[0])
		} else {
			m.runBatch(batch)
		}
		<-m.running
		for range batch {
			m.inflight.Done()
		}
	}
}

// Drain closes admissions, waits for queued and running jobs to finish until
// ctx expires, then cancels the stragglers and waits for them to unwind, and
// finally stops the workers. Idempotent.
func (m *Manager) Drain(ctx context.Context) {
	m.drainMu.Lock()
	if m.draining {
		m.drainMu.Unlock()
		m.workersWG.Wait()
		return
	}
	m.draining = true
	m.drainMu.Unlock()

	finished := make(chan struct{})
	go func() { m.inflight.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-ctx.Done():
		// Deadline: cancel everything still alive. Cancellation reaches the
		// solver through the engine wrapper at its next kernel call, so the
		// jobs unwind promptly; wait for them.
		for _, j := range m.List() {
			if st := j.State(); st == JobQueued || st == JobRunning {
				j.Cancel()
			}
		}
		<-finished
	}
	m.qmu.Lock()
	m.quitting = true
	m.qcond.Broadcast()
	m.qmu.Unlock()
	m.workersWG.Wait()
}
