// Package serve is the solver-as-a-service layer: a stdlib-only HTTP daemon
// that keeps operators (matrix + partition + preconditioner) resident across
// solves and executes jobs against them under admission control.
//
// The one-shot CLIs (cmd/pipescg, cmd/chaos) rebuild everything per run; the
// regime the paper's pipelined s-step methods target — solves issued
// continuously against long-lived operators, as in PIPELCG-style persistent
// solver contexts — needs the opposite: build once, solve many. The package
// owns four concerns:
//
//   - Registry: named problems (synth grids, MatrixMarket uploads — plain or
//     gzipped) built once, partitioned once, preconditioners set up once, in
//     an LRU cache with refcounts so in-flight jobs pin their operator.
//   - Manager: a bounded submission queue with admission control (reject
//     with 429 + Retry-After when full), a worker pool sized against the
//     process-wide kernel pool (internal/par), per-job timeouts/cancellation
//     wired into the solver's deadline-aware waits, and krylov.SolveLadder
//     as the default execution engine so faulty jobs degrade instead of
//     failing.
//   - Streaming + metrics: per-job progress as chunked NDJSON events
//     (iteration, relres, recovery ledger), /healthz, and /metrics in
//     Prometheus text format (trace.Counters aggregates, queue depth,
//     in-flight jobs, cache hits/evictions, request latency histogram).
//   - Graceful drain: SIGTERM (handled by cmd/solverd) stops admissions,
//     finishes or cancels in-flight jobs against a deadline, and flushes
//     final metrics.
//
// Numerics are untouched: a job executed through the daemon runs the same
// solver on the same engine as the CLI path and produces a bit-identical
// iterate (asserted by TestServeBitIdentical).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/par"
)

// Config sizes the service. The zero value is usable: every field falls back
// to the documented default.
type Config struct {
	// QueueDepth bounds the submission queue; a full queue rejects with
	// 429 + Retry-After. Default 64.
	QueueDepth int
	// Workers is the solve worker-pool size. Concurrent solves share the
	// process-wide kernel pool (internal/par serializes parallel regions),
	// so extra workers add concurrency without oversubscribing cores; the
	// default is the kernel pool's worker count, one solver goroutine per
	// kernel worker.
	Workers int
	// CacheEntries bounds the registry's resident operators (LRU, pinned
	// entries excepted). Default 8.
	CacheEntries int
	// MaxJobRuntime caps a job that did not request its own timeout.
	// Default 2 minutes.
	MaxJobRuntime time.Duration
	// RetainJobs bounds how many finished jobs stay queryable. Default 512.
	RetainJobs int
	// Log receives structured service logs — one record per finished job
	// (id, method, ranks, outcome, duration, overlap efficiency) plus the
	// drain-time metrics flush. Nil means slog.Default().
	Log *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// the profiling plane is opt-in (cmd/solverd's -pprof flag) so a public
	// deployment does not expose heap and CPU profiles unasked.
	EnablePprof bool
	// ShardID names this daemon inside a cluster (cmd/solverd -shard). When
	// set, job IDs are prefixed "<shard>-job-N" so a stateless router
	// (cmd/solverouter) can route status and stream lookups to the owning
	// shard from the ID alone, and /healthz and /metrics carry the identity.
	ShardID string
	// Peers maps peer shard names to their base URLs (cmd/solverd -peers).
	// The daemon serves the set on GET /v1/cluster so a router can bootstrap
	// cluster membership from any one shard ("discovery by registration").
	Peers map[string]string
	// CoalesceWidth, when > 1, lets a worker run up to this many queued
	// single-rank jobs with the same coalesce key (operator, method, PC, s,
	// tolerance, iteration budget) as ONE block solve (internal/blockcg):
	// the batch shares every SPMV and reduction while each job keeps its own
	// right-hand side, convergence trajectory, deadline and counter ledger —
	// bit-identical per job to a solo solve. Default 1: coalescing off.
	CoalesceWidth int
	// CoalesceWindow is how long a worker whose batch is not yet full waits,
	// once, for compatible stragglers before solving. Zero (the default)
	// batches only what is already queued — pure backlog coalescing, no
	// added latency.
	CoalesceWindow time.Duration
	// AutoTuneDefault changes the empty-method default from the resilience
	// ladder to the stability tuner (method "auto"): an operator whose solves
	// drift or stall is steered onto a residual-replacement configuration,
	// and repeat jobs warm-start from the recorded fingerprint. An explicit
	// method in the request always wins. cmd/solverd's -auto-tune flag.
	AutoTuneDefault bool
	// TraceSeed seeds the daemon's splitmix64 trace/span ID generator. Zero
	// (the default) seeds from the wall clock; tests set it for reproducible
	// IDs. IDs only — solver numerics never touch this stream.
	TraceSeed uint64
	// FlightJobs / FlightEvents bound the flight recorder's rings of recent
	// completed job traces and structured events. Defaults 256 / 1024.
	FlightJobs   int
	FlightEvents int
	// FlightDumpPath, when set, writes the flight recorder's JSON dump to
	// this file at the end of Drain (and Kill) — the automatic postmortem
	// artifact. cmd/solverd's -flight-dump flag.
	FlightDumpPath string
	// SkewThreshold is the straggler score at or above which a multi-rank
	// solve records a rank_skew flight event. Default 0.25; the metric
	// gauges are exported regardless.
	SkewThreshold float64
	// MutexProfileFraction / BlockProfileRate, when > 0, are applied to the
	// Go runtime's mutex and block profilers at construction so the pprof
	// plane (EnablePprof) has contention data to serve. Off by default —
	// both profilers carry a runtime cost. cmd/solverd's -pprof-mutex and
	// -pprof-block flags.
	MutexProfileFraction int
	BlockProfileRate     int

	// testHookBeforeRun, when set by in-package tests, runs in the worker
	// just before a job executes — a deterministic way to hold the pool busy
	// for admission-control and timeout tests.
	testHookBeforeRun func(*Job)
	// testFabricFault, when set by in-package tests, is installed on every
	// multi-rank solve's fabric — how the skew detector is validated against
	// the straggler-jitter injector without a public fault API.
	testFabricFault *comm.FaultConfig
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = par.Workers()
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 8
	}
	if c.MaxJobRuntime <= 0 {
		c.MaxJobRuntime = 2 * time.Minute
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 512
	}
	if c.CoalesceWidth <= 0 {
		c.CoalesceWidth = 1
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.SkewThreshold <= 0 {
		c.SkewThreshold = 0.25
	}
	return c
}

// Server ties the registry, job manager and HTTP plane together.
type Server struct {
	cfg      Config
	Registry *Registry
	Jobs     *Manager
	Metrics  *Metrics
	mux      *http.ServeMux

	hsMu sync.Mutex
	hs   *http.Server
}

// New builds a stopped server; call Serve (or mount Handler) to run it.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexProfileFraction)
	}
	if cfg.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockProfileRate)
	}
	met := NewMetrics()
	reg := NewRegistry(cfg.CacheEntries, met)
	s := &Server{
		cfg:      cfg,
		Registry: reg,
		Metrics:  met,
		Jobs:     NewManager(cfg, reg, met),
		mux:      http.NewServeMux(),
	}
	s.routes()
	return s
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve runs the HTTP server on l until Drain (or a listener error). It owns
// the http.Server so Drain and Kill can shut it down.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

func (s *Server) httpServer() *http.Server {
	s.hsMu.Lock()
	defer s.hsMu.Unlock()
	return s.hs
}

// Drain is the graceful-shutdown sequence: stop admissions (new submissions
// get 503), let queued and running jobs finish until ctx expires, cancel
// whatever is still in flight and wait for it to unwind, stop the workers,
// shut the HTTP server down, and flush final metrics through Config.Log.
// Drain is idempotent; concurrent calls share the same shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.Jobs.Drain(ctx)
	var err error
	if hs := s.httpServer(); hs != nil {
		// Jobs are done or cancelled; give in-flight HTTP responses (event
		// streams flushing their tail) a short bounded window.
		hctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err = hs.Shutdown(hctx)
	}
	s.flushFinalMetrics()
	s.dumpFlight("drain")
	return err
}

// Kill is the SIGKILL-equivalent teardown, for inter-daemon chaos tests: the
// HTTP server closes abruptly (in-flight requests see their connections
// reset, exactly what a killed process's peers observe), every queued and
// running job is cancelled without grace, and the workers stop. Unlike a real
// SIGKILL it still unwinds goroutines — the harness can assert zero leaks
// after the "crash" — but no client-visible nicety survives: no 503s, no
// drain window, no final event flush over HTTP.
func (s *Server) Kill() {
	if hs := s.httpServer(); hs != nil {
		hs.Close()
	}
	// Drain with an already-expired context takes the hard path immediately:
	// cancel everything live, wait only for the unwind, stop the workers.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Jobs.Drain(ctx)
	s.dumpFlight("kill")
}

// dumpFlight records the shutdown in the flight recorder and, when
// configured, writes the recorder's dump to disk — the postmortem artifact
// that survives the process. Best effort: a write failure is logged, never
// fatal (the process is already going down).
func (s *Server) dumpFlight(reason string) {
	fl := s.Jobs.Flight()
	fl.RecordEvent(obs.FlightEvent{
		UnixNS: time.Now().UnixNano(), Kind: "shutdown",
		Attrs: map[string]string{"reason": reason},
	})
	if s.cfg.FlightDumpPath == "" {
		return
	}
	data, err := json.Marshal(fl.Dump())
	if err == nil {
		err = os.WriteFile(s.cfg.FlightDumpPath, data, 0o644)
	}
	if err != nil {
		s.cfg.Log.Error("serve: flight dump failed", "path", s.cfg.FlightDumpPath, "error", err)
		return
	}
	s.cfg.Log.Info("serve: flight dump written", "path", s.cfg.FlightDumpPath, "reason", reason)
}

// flushFinalMetrics logs the end-of-life counter snapshot — the drain
// contract's "flush": the totals survive in the process log even when the
// scraper missed the last interval.
func (s *Server) flushFinalMetrics() {
	snap := s.Metrics.Snapshot(s.Jobs, s.Registry)
	s.cfg.Log.Info("serve: final metrics", "metrics", snap)
}

// fmtDuration renders a Retry-After value in whole seconds, at least 1.
func retryAfterSeconds(d time.Duration) string {
	sec := int(d / time.Second)
	if sec < 1 {
		sec = 1
	}
	return fmt.Sprintf("%d", sec)
}
