package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/krylov"
)

// TestTunerSwitchesDriftingOperatorAndWarmStarts is the tentpole acceptance
// test: on an operator where the cold-start pipelined s-step method loses the
// true residual (ecology2/16 at s=6 breaks down far above a 1e-9 tolerance),
// the first auto job fails, the tuner records a residual-replacement
// configuration for the fingerprint, and the SECOND auto job warm-starts from
// that record and converges — method, s and cadence all selected by the
// service, visible on the event stream and the /v1/tuner plane.
func TestTunerSwitchesDriftingOperatorAndWarmStarts(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	req := SolveRequest{
		ProblemSpec: ProblemSpec{Problem: "ecology2", Scale: 16},
		Method:      MethodAuto,
		S:           6,
		RelTol:      1e-9,
		MaxIter:     2000,
	}

	// Job 1: cold start. The tuner runs the paper's headline method at the
	// request's s; on this operator it cannot reach the tolerance.
	j1, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	if st := j1.State(); st != JobFailed {
		t.Fatalf("cold-start job state = %s, want %s (the unstable config must fail here)", st, JobFailed)
	}
	start1, res1 := tunerEvents(t, j1)
	if start1.TunedMethod != tunerColdStartMethod || start1.TunerWarmStart {
		t.Fatalf("cold start event: tuned=%q warm=%v, want %q/false",
			start1.TunedMethod, start1.TunerWarmStart, tunerColdStartMethod)
	}
	if res1.TunedMethod != tunerColdStartMethod {
		t.Fatalf("cold result event: tuned=%q, want %q", res1.TunedMethod, tunerColdStartMethod)
	}

	// The failure must have written a residual-replacement record for the
	// operator fingerprint.
	fp := tuneFingerprint(req.withDefaults())
	rec, ok := s.Jobs.Tuner().Snapshot()[fp]
	if !ok {
		t.Fatalf("no tuner record for fingerprint %q after the failed job", fp)
	}
	if rec.Method != tunerStableMethod || !rec.Switched {
		t.Fatalf("record after failure = %+v, want a switch to %q", rec, tunerStableMethod)
	}
	if rec.S != 1 || rec.ReplaceEvery != tunerDefaultCadence {
		t.Fatalf("switch recorded {s=%d, rr=%d}, want {s=1, rr=%d}", rec.S, rec.ReplaceEvery, tunerDefaultCadence)
	}

	// Job 2: same fingerprint. Warm-starts onto the recorded replacement
	// config and converges.
	j2, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if st := j2.State(); st != JobConverged {
		res, jerr := j2.Result()
		t.Fatalf("warm-started job state = %s (res=%+v err=%v), want %s", st, res, jerr, JobConverged)
	}
	start2, res2 := tunerEvents(t, j2)
	if start2.TunedMethod != tunerStableMethod || !start2.TunerWarmStart {
		t.Fatalf("warm start event: tuned=%q warm=%v, want %q/true",
			start2.TunedMethod, start2.TunerWarmStart, tunerStableMethod)
	}
	if res2.Method != tunerStableMethod {
		t.Fatalf("result method = %q, want the tuner's %q", res2.Method, tunerStableMethod)
	}
	if got := j2.Counters().ResidualReplacements; got == 0 {
		t.Fatal("warm-started replacement solve recorded zero residual replacements")
	}

	// The clean run confirms the record; the fingerprint survives with the
	// same configuration.
	rec2 := s.Jobs.Tuner().Snapshot()[fp]
	if rec2.Method != tunerStableMethod || rec2.Switched {
		t.Fatalf("record after warm-started success = %+v, want an unswitched confirmation of %q",
			rec2, tunerStableMethod)
	}
	if rec2.Jobs < 2 {
		t.Fatalf("record job count = %d, want >= 2", rec2.Jobs)
	}

	// Ledger: one switch, one warm start, two recorded outcomes.
	if got := s.Metrics.tunerSwitches.Load(); got != 1 {
		t.Fatalf("tunerSwitches = %d, want 1", got)
	}
	if got := s.Metrics.tunerWarmstarts.Load(); got != 1 {
		t.Fatalf("tunerWarmstarts = %d, want 1", got)
	}
	if got := s.Metrics.tunerRecords.Load(); got != 2 {
		t.Fatalf("tunerRecords = %d, want 2", got)
	}

	// GET /v1/tuner exposes the record.
	resp, err := http.Get(ts.URL + "/v1/tuner")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire map[string]TunerRecord
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wrec, ok := wire[fp]; !ok || wrec.Method != tunerStableMethod {
		t.Fatalf("/v1/tuner = %v, want record for %q with method %q", wire, fp, tunerStableMethod)
	}
}

// tunerEvents returns a finished job's start and result events.
func tunerEvents(t *testing.T, j *Job) (start, result Event) {
	t.Helper()
	events, cancel := j.Subscribe()
	defer cancel()
	var sawStart, sawResult bool
	for ev := range events {
		switch ev.Type {
		case "start":
			start, sawStart = ev, true
		case "result":
			result, sawResult = ev, true
		}
	}
	if !sawStart || !sawResult {
		t.Fatalf("job %s stream missing start/result (start=%v result=%v)", j.ID, sawStart, sawResult)
	}
	return start, result
}

// TestTunerDecisionRules pins the selector's decision table without running
// solves: drift past the limit switches even a converged run; a failing
// replacement config tightens its cadence down to the floor; a healthy run
// whose overlap hid nothing halves s; a healthy run confirms.
func TestTunerDecisionRules(t *testing.T) {
	conv := &krylov.Result{Converged: true}
	fail := &krylov.Result{}

	cases := []struct {
		name   string
		dec    tuneDecision
		res    *krylov.Result
		drift  float64
		hidden float64
		want   TunerRecord
	}{
		{
			name:  "converged but drifted past the limit switches",
			dec:   tuneDecision{fp: "a", Method: tunerColdStartMethod, S: 6},
			res:   conv,
			drift: tunerDriftLimit * 4, hidden: 0.8,
			want: TunerRecord{Method: tunerStableMethod, S: 1, ReplaceEvery: tunerDefaultCadence, Switched: true},
		},
		{
			name: "failing replacement config halves its cadence",
			dec:  tuneDecision{fp: "b", Method: tunerStableMethod, S: 1, ReplaceEvery: 24},
			res:  fail, drift: 0, hidden: 0.8,
			want: TunerRecord{Method: tunerStableMethod, S: 1, ReplaceEvery: 12, Switched: true},
		},
		{
			name: "cadence tightening bottoms out at the floor",
			dec:  tuneDecision{fp: "c", Method: tunerStableMethod, S: 1, ReplaceEvery: tunerMinCadence},
			res:  fail, drift: 0, hidden: 0.8,
			want: TunerRecord{Method: tunerStableMethod, S: 1, ReplaceEvery: tunerMinCadence, Switched: true},
		},
		{
			name: "default-cadence replacement failure tightens from the default",
			dec:  tuneDecision{fp: "d", Method: tunerStableMethod, S: 1},
			res:  fail, drift: 0, hidden: 0.8,
			want: TunerRecord{Method: tunerStableMethod, S: 1, ReplaceEvery: tunerDefaultCadence / 2, Switched: true},
		},
		{
			name: "healthy run with nothing hidden halves s",
			dec:  tuneDecision{fp: "e", Method: tunerColdStartMethod, S: 4},
			res:  conv, drift: 1.5, hidden: 0.01,
			want: TunerRecord{Method: tunerColdStartMethod, S: 2, Switched: true},
		},
		{
			name: "healthy run with unmeasured overlap confirms",
			dec:  tuneDecision{fp: "f", Method: tunerColdStartMethod, S: 4},
			res:  conv, drift: 1.5, hidden: -1,
			want: TunerRecord{Method: tunerColdStartMethod, S: 4},
		},
		{
			name: "healthy run confirms as-is",
			dec:  tuneDecision{fp: "g", Method: tunerStableMethod, S: 1, ReplaceEvery: 12},
			res:  conv, drift: 2, hidden: 0.6,
			want: TunerRecord{Method: tunerStableMethod, S: 1, ReplaceEvery: 12},
		},
	}

	tu := NewTuner(NewMetrics())
	for _, tc := range cases {
		tu.Record(&tc.dec, tc.res, tc.drift, tc.hidden)
		got := tu.Snapshot()[tc.dec.fp]
		if got.Method != tc.want.Method || got.S != tc.want.S ||
			got.ReplaceEvery != tc.want.ReplaceEvery || got.Switched != tc.want.Switched {
			t.Errorf("%s: got {m=%s s=%d rr=%d sw=%v}, want {m=%s s=%d rr=%d sw=%v}", tc.name,
				got.Method, got.S, got.ReplaceEvery, got.Switched,
				tc.want.Method, tc.want.S, tc.want.ReplaceEvery, tc.want.Switched)
		}
	}
}

// TestAutoTuneDefaultConfig: with Config.AutoTuneDefault set, an empty-method
// request runs under the tuner instead of the ladder; an explicit method
// still wins.
func TestAutoTuneDefaultConfig(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, AutoTuneDefault: true})
	defer drainServer(t, s)

	j, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.Req.Method != MethodAuto {
		t.Fatalf("empty method became %q, want %q", j.Req.Method, MethodAuto)
	}
	if j.State() != JobConverged {
		t.Fatalf("auto-default job state = %s, want %s", j.State(), JobConverged)
	}
	start, _ := tunerEvents(t, j)
	if start.TunedMethod == "" {
		t.Fatal("auto-default job carries no tuner selection on its start event")
	}

	exp, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, Method: "pcg"})
	if err != nil {
		t.Fatal(err)
	}
	<-exp.Done()
	if exp.Req.Method != "pcg" {
		t.Fatalf("explicit method rewritten to %q", exp.Req.Method)
	}
}

// TestAutoJobsDoNotCoalesce: auto jobs are resolved per job at run time, so
// they must never share a block solve even when otherwise compatible.
func TestAutoJobsDoNotCoalesce(t *testing.T) {
	r := SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, Method: MethodAuto}.withDefaults()
	if coalescible(r) {
		t.Fatal("auto request reported coalescible")
	}
	r.Method = "pcg"
	if !coalescible(r) {
		t.Fatal("explicit single-rank request must stay coalescible")
	}
	// The cadence is part of the coalesce key: two jobs with different
	// replacement cadences must not share one solver loop.
	a, b := r, r
	a.ReplaceEvery, b.ReplaceEvery = 0, 24
	if coalesceKey(a) == coalesceKey(b) {
		t.Fatal("replacement cadence missing from the coalesce key")
	}
}
