package serve

import (
	"fmt"
	"sync"

	"repro/internal/krylov"
)

// MethodAuto is the request method that delegates solver selection to the
// service's stability tuner. An auto job runs whatever configuration the
// tuner currently believes is best for its operator fingerprint, and its
// outcome — convergence, out-of-band true-residual drift, measured overlap —
// feeds the next decision for that fingerprint.
const MethodAuto = "auto"

// Tuner knobs. The drift threshold matches audit.DefaultParams().DriftFactor
// so the serve-side signal and the offline differential harness flag the same
// runs; the cadence floor stops the tightening loop from degenerating into
// replacement-every-iteration (which would abandon the pipelined recurrences
// entirely rather than stabilize them).
const (
	// tunerColdStartMethod is what an unknown fingerprint runs first: the
	// paper's headline pipelined s-step method, at the request's s.
	tunerColdStartMethod = "pipe-pscg"
	// tunerStableMethod is the stability fallback: pipelined CG with periodic
	// residual replacement (Meurant recurrences + the rk_replace policy).
	tunerStableMethod = "pipe-m-cg-rr"
	// tunerDriftLimit flags a run whose true residual ‖b−A·x‖/‖b‖ exceeded
	// this multiple of the recurrence residual at any audited check.
	tunerDriftLimit = 25.0
	// tunerMinCadence bounds cadence tightening from below.
	tunerMinCadence = 6
	// tunerDefaultCadence is the cadence recorded when switching a drifting
	// operator onto the replacement variant, and the effective cadence a
	// ReplaceEvery=0 record tightens from (krylov's method default is 50).
	tunerDefaultCadence = 50
	// tunerLowHidden flags a run whose overlap ledger hid almost none of its
	// reduction latency: the deep pipeline is not paying for its extra
	// arithmetic, so the tuner shrinks s instead of keeping the basis depth.
	tunerLowHidden = 0.05
)

// TunerRecord is the remembered best configuration for one operator
// fingerprint, plus the evidence that produced it.
type TunerRecord struct {
	Method       string `json:"method"`
	S            int    `json:"s"`
	ReplaceEvery int    `json:"replace_every,omitempty"`
	// Switched marks a record written by a stability or efficiency switch (as
	// opposed to a confirmation of the configuration that just ran).
	Switched bool `json:"switched,omitempty"`
	// Reason is the human-readable trigger of the last write.
	Reason string `json:"reason"`
	// DriftRatio is the max true/recurrence residual ratio observed on the
	// run that wrote this record (0 when the run had no drift probe).
	DriftRatio float64 `json:"drift_ratio,omitempty"`
	// HiddenFraction is the overlap ledger's measured hidden fraction on the
	// run that wrote this record.
	HiddenFraction float64 `json:"hidden_fraction,omitempty"`
	// Jobs counts the auto jobs that have run under this fingerprint.
	Jobs int `json:"jobs"`
}

// tuneDecision carries one auto job's resolved configuration from Resolve
// (in Manager.run, before the solver is looked up) to Record (in finishJob).
type tuneDecision struct {
	fp           string
	Method       string
	S            int
	ReplaceEvery int
	// WarmStart is true when the decision came from a recorded fingerprint
	// rather than the cold-start default.
	WarmStart bool
}

// Tuner is the serve-side stability auto-selector: per operator fingerprint
// (registry key + preconditioner + tolerance) it remembers the best known
// {method, s, replacement cadence} and steers repeat auto jobs onto it.
//
// Decision rule, evaluated when an auto job finishes:
//
//   - Unhealthy (did not converge, or the out-of-band drift probe measured
//     the true residual > tunerDriftLimit × the recurrence residual): switch
//     to the residual-replacement variant; if already on it, halve the
//     replacement cadence (floor tunerMinCadence).
//   - Healthy but the overlap ledger hid < tunerLowHidden of the reduction
//     latency at s > 1: keep the method, halve s — the pipeline depth is pure
//     arithmetic overhead when there is nothing left to hide.
//   - Healthy otherwise: confirm the configuration that ran.
//
// The record is consulted at submission of the NEXT auto job with the same
// fingerprint (warm start); a running job is never re-steered mid-solve, so
// the solve the client observes is always one deterministic configuration.
type Tuner struct {
	met *Metrics

	mu  sync.Mutex
	rec map[string]*TunerRecord
}

// NewTuner builds an empty tuner feeding the given metrics ledger.
func NewTuner(met *Metrics) *Tuner {
	return &Tuner{met: met, rec: map[string]*TunerRecord{}}
}

// tuneFingerprint names the tuning unit: the registry's operator key plus the
// two request knobs that reshape convergence (preconditioner, tolerance).
// Method, s and cadence are deliberately excluded — they are the outputs.
func tuneFingerprint(r SolveRequest) string {
	return fmt.Sprintf("%s|pc=%s|rtol=%g", r.ProblemSpec.Key(), r.PC, r.RelTol)
}

// Resolve picks the configuration an auto job will run: the recorded best for
// its fingerprint when one exists (a warm start), else the cold-start default
// at the request's s.
func (t *Tuner) Resolve(req SolveRequest) *tuneDecision {
	fp := tuneFingerprint(req)
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.rec[fp]; ok {
		rec.Jobs++
		t.met.tunerWarmstarts.Add(1)
		return &tuneDecision{fp: fp, Method: rec.Method, S: rec.S,
			ReplaceEvery: rec.ReplaceEvery, WarmStart: true}
	}
	return &tuneDecision{fp: fp, Method: tunerColdStartMethod, S: req.S}
}

// Record folds one finished auto job's signals into the fingerprint's record.
// hidden < 0 means the overlap ledger measured nothing (no posted
// reductions) and the efficiency rule is skipped. Canceled jobs teach
// nothing (cancellation is operational, not numerical) and are not recorded.
func (t *Tuner) Record(dec *tuneDecision, res *krylov.Result, driftRatio, hidden float64) {
	converged := res != nil && res.Converged
	drifted := finiteF(driftRatio) && driftRatio > tunerDriftLimit
	next := TunerRecord{Method: dec.Method, S: dec.S, ReplaceEvery: dec.ReplaceEvery}
	if finiteF(driftRatio) && driftRatio > 0 {
		next.DriftRatio = driftRatio
	}
	if finiteF(hidden) && hidden >= 0 {
		next.HiddenFraction = hidden
	}

	switch {
	case !converged || drifted:
		next.Switched = true
		if !converged {
			next.Reason = "solve did not converge"
		} else {
			next.Reason = fmt.Sprintf("true residual drifted %.3gx past the recurrence", driftRatio)
		}
		if dec.Method == tunerStableMethod {
			// Already on replacement: tighten the cadence.
			cur := dec.ReplaceEvery
			if cur <= 0 {
				cur = tunerDefaultCadence
			}
			if cur/2 >= tunerMinCadence {
				next.ReplaceEvery = cur / 2
			} else {
				next.ReplaceEvery = tunerMinCadence
			}
		} else {
			next.Method = tunerStableMethod
			next.S = 1
			next.ReplaceEvery = tunerDefaultCadence
		}
	case hidden >= 0 && hidden < tunerLowHidden && dec.S > 1:
		next.Switched = true
		next.Reason = fmt.Sprintf("overlap hid only %.1f%% of reduction latency", 100*hidden)
		next.S = dec.S / 2
	default:
		next.Reason = "confirmed"
	}

	t.mu.Lock()
	if prev, ok := t.rec[dec.fp]; ok {
		next.Jobs = prev.Jobs
	}
	next.Jobs++
	t.rec[dec.fp] = &next
	t.mu.Unlock()

	t.met.tunerRecords.Add(1)
	if next.Switched {
		t.met.tunerSwitches.Add(1)
	}
}

// Snapshot returns a copy of every fingerprint's record, for GET /v1/tuner.
func (t *Tuner) Snapshot() map[string]TunerRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TunerRecord, len(t.rec))
	for fp, rec := range t.rec {
		out[fp] = *rec
	}
	return out
}

// Len returns the number of remembered fingerprints.
func (t *Tuner) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rec)
}

// finiteF reports whether v is a usable finite signal (NaN compares false).
func finiteF(v float64) bool { return v == v && v < 1e308 && v > -1e308 }
