package serve

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestJobKeyDedup: a second submission carrying the JobKey of a retained job
// attaches to that job — same ID, same result, one solve — whether the
// original is still running or already finished. This is the property that
// makes cluster-level retry safe: a router that lost a shard's response can
// resubmit without risking a double solve.
func TestJobKeyDedup(t *testing.T) {
	release := make(chan struct{})
	held := make(chan struct{}, 8)
	s := New(Config{Workers: 2, QueueDepth: 8, testHookBeforeRun: func(j *Job) {
		if j.Req.JobKey == "held" {
			held <- struct{}{}
			<-release
		}
	}})
	defer drainServer(t, s)

	req := SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "held"}
	j1, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-held // the solve is in a worker, parked pre-run

	// Duplicate while running: attaches, does not queue a second solve.
	j2, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j1 {
		t.Fatalf("dedup while running: got job %s, want %s", j2.ID, j1.ID)
	}
	close(release)
	<-j1.Done()

	// Duplicate after completion: still attaches to the retained job.
	j3, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j3 != j1 {
		t.Fatalf("dedup after completion: got job %s, want %s", j3.ID, j1.ID)
	}
	if got := s.Metrics.jobsDeduped.Load(); got != 2 {
		t.Fatalf("jobsDeduped = %d, want 2", got)
	}

	// A different key runs its own solve with its own identity.
	other, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if other == j1 {
		t.Fatal("distinct keys must not dedup")
	}
	<-other.Done()

	// Keyless submissions never dedup against each other.
	a, _ := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	b, _ := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	if a == nil || b == nil || a == b {
		t.Fatal("keyless submissions must stay distinct")
	}
	<-a.Done()
	<-b.Done()
}

// TestJobKeyRetentionExpiry: keys die with their jobs. Once retention trims
// the original job, the same key starts a fresh solve instead of resolving
// to a forgotten ID.
func TestJobKeyRetentionExpiry(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 2})
	defer drainServer(t, s)

	first, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	<-first.Done()
	// Push the keyed job out of the retention window.
	for i := 0; i < 3; i++ {
		j, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}
	if got := s.Jobs.Get(first.ID); got != nil {
		t.Fatalf("job %s should have been trimmed", first.ID)
	}
	again, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if again == first || again.ID == first.ID {
		t.Fatal("expired key must start a fresh job")
	}
	<-again.Done()
}

// TestShardIdentityJobIDs: a shard-identified daemon prefixes its job IDs so
// a stateless router can route lookups by ID alone.
func TestShardIdentityJobIDs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, ShardID: "s7"})
	defer drainServer(t, s)
	j, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID, "s7-job-") {
		t.Fatalf("job ID %q lacks shard prefix", j.ID)
	}
	<-j.Done()
}

// drainServer shuts a test server down within a bounded window.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}
