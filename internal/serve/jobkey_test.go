package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestJobKeyDedup: a second submission carrying the JobKey of a retained job
// attaches to that job — same ID, same result, one solve — whether the
// original is still running or already finished. This is the property that
// makes cluster-level retry safe: a router that lost a shard's response can
// resubmit without risking a double solve.
func TestJobKeyDedup(t *testing.T) {
	release := make(chan struct{})
	held := make(chan struct{}, 8)
	s := New(Config{Workers: 2, QueueDepth: 8, testHookBeforeRun: func(j *Job) {
		if j.Req.JobKey == "held" {
			held <- struct{}{}
			<-release
		}
	}})
	defer drainServer(t, s)

	req := SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "held"}
	j1, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-held // the solve is in a worker, parked pre-run

	// Duplicate while running: attaches, does not queue a second solve.
	j2, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j1 {
		t.Fatalf("dedup while running: got job %s, want %s", j2.ID, j1.ID)
	}
	close(release)
	<-j1.Done()

	// Duplicate after completion: still attaches to the retained job.
	j3, err := s.Jobs.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j3 != j1 {
		t.Fatalf("dedup after completion: got job %s, want %s", j3.ID, j1.ID)
	}
	if got := s.Metrics.jobsDeduped.Load(); got != 2 {
		t.Fatalf("jobsDeduped = %d, want 2", got)
	}

	// A different key runs its own solve with its own identity.
	other, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if other == j1 {
		t.Fatal("distinct keys must not dedup")
	}
	<-other.Done()

	// Keyless submissions never dedup against each other.
	a, _ := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	b, _ := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	if a == nil || b == nil || a == b {
		t.Fatal("keyless submissions must stay distinct")
	}
	<-a.Done()
	<-b.Done()
}

// TestJobKeyRetentionExpiry: keys die with their jobs. Once retention trims
// the original job, the same key starts a fresh solve instead of resolving
// to a forgotten ID.
func TestJobKeyRetentionExpiry(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 2})
	defer drainServer(t, s)

	first, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	<-first.Done()
	// Push the keyed job out of the retention window.
	for i := 0; i < 3; i++ {
		j, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}
	if got := s.Jobs.Get(first.ID); got != nil {
		t.Fatalf("job %s should have been trimmed", first.ID)
	}
	again, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if again == first || again.ID == first.ID {
		t.Fatal("expired key must start a fresh job")
	}
	<-again.Done()
}

// TestShardIdentityJobIDs: a shard-identified daemon prefixes its job IDs so
// a stateless router can route lookups by ID alone.
func TestShardIdentityJobIDs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, ShardID: "s7"})
	defer drainServer(t, s)
	j, err := s.Jobs.Submit(SolveRequest{ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID, "s7-job-") {
		t.Fatalf("job ID %q lacks shard prefix", j.ID)
	}
	<-j.Done()
}

// TestRetentionTrimsOnCompletion is the regression for a job/key leak:
// trimLocked used to run only on Submit and stops at a live oldest job, so a
// backlog submitted while the oldest job was still running — and finishing
// after the LAST submission — was never trimmed: jobs and their idempotency
// keys sat above RetainJobs forever (until the next submission, which a
// drained or killed server never sees). Completion now trims too.
func TestRetentionTrimsOnCompletion(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 16, RetainJobs: 2,
		testHookBeforeRun: func(*Job) { <-release }})

	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Jobs.Submit(SolveRequest{
			ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5},
			JobKey:      fmt.Sprintf("ret-%d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// All five are retained while live: the oldest is running (held by the
	// hook), so Submit-side trims must keep everything.
	if got := len(s.Jobs.List()); got != 5 {
		t.Fatalf("retained %d live jobs, want all 5", got)
	}

	close(release)
	for _, j := range jobs {
		<-j.Done()
	}
	// No submission happens after the jobs finish — completion itself must
	// have trimmed down to the retention bound, keys included.
	if got := len(s.Jobs.List()); got > 2 {
		t.Fatalf("retained %d jobs after completion, want <= RetainJobs (2)", got)
	}
	s.Jobs.mu.Lock()
	keys := len(s.Jobs.byKey)
	s.Jobs.mu.Unlock()
	if keys > 2 {
		t.Fatalf("retained %d idempotency keys after completion, want <= 2", keys)
	}
	// A trimmed key starts a fresh job, not a dedup attach.
	again, err := s.Jobs.Submit(SolveRequest{
		ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5}, JobKey: "ret-0"})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == jobs[0].ID {
		t.Fatal("trimmed key attached to the forgotten job")
	}
	<-again.Done()
	drainServer(t, s)
}

// TestKillTrimsRetention: the SIGKILL-equivalent teardown cancels the whole
// backlog; those completions must trim retention the same way natural ones
// do, so a crashed-and-inspected server holds no key map above the bound.
func TestKillTrimsRetention(t *testing.T) {
	// The hook parks the worker until Kill cancels the held job — the
	// teardown itself is what lets the backlog finish, exactly the crash
	// shape the leak needs.
	s := New(Config{Workers: 1, QueueDepth: 16, RetainJobs: 2,
		testHookBeforeRun: func(j *Job) { <-j.ctx.Done() }})

	for i := 0; i < 5; i++ {
		if _, err := s.Jobs.Submit(SolveRequest{
			ProblemSpec: ProblemSpec{Problem: "poisson7", N: 5},
			JobKey:      fmt.Sprintf("kill-%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Kill() // cancels every queued and running job, waits for the unwind
	if got := len(s.Jobs.List()); got > 2 {
		t.Fatalf("retained %d jobs after Kill, want <= RetainJobs (2)", got)
	}
	s.Jobs.mu.Lock()
	keys := len(s.Jobs.byKey)
	s.Jobs.mu.Unlock()
	if keys > 2 {
		t.Fatalf("retained %d idempotency keys after Kill, want <= 2", keys)
	}
}

// drainServer shuts a test server down within a bounded window.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}
