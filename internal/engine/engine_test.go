package engine

import (
	"testing"

	"repro/internal/sparse"
)

type fakePC struct{ applies int }

func (f *fakePC) Apply(dst, src []float64) {
	f.applies++
	for i := range dst {
		dst[i] = 2 * src[i]
	}
}
func (f *fakePC) Name() string { return "fake" }
func (f *fakePC) WorkPerApply() (float64, float64, int, int) {
	return 10, 20, 1, 0
}

func TestSeqSpMVAndCounters(t *testing.T) {
	a := sparse.FromDense(2, 2, []float64{2, 0, 0, 3})
	e := NewSeq(a, nil)
	if e.NLocal() != 2 || e.NGlobal() != 2 {
		t.Fatal("sizes")
	}
	y := make([]float64, 2)
	e.SpMV(y, []float64{1, 1})
	if y[0] != 2 || y[1] != 3 {
		t.Fatalf("y = %v", y)
	}
	if e.Counters().SpMV != 1 || e.Counters().SpMVFlops != 4 {
		t.Fatalf("counters %+v", e.Counters())
	}
}

func TestSeqApplyPCNilIsIdentity(t *testing.T) {
	a := sparse.Identity(3)
	e := NewSeq(a, nil)
	dst := make([]float64, 3)
	e.ApplyPC(dst, []float64{1, 2, 3})
	if dst[1] != 2 {
		t.Fatal("identity PC broken")
	}
	if e.Counters().PCApply != 1 {
		t.Fatal("PC count")
	}
}

func TestSeqApplyPCDelegates(t *testing.T) {
	a := sparse.Identity(2)
	pc := &fakePC{}
	e := NewSeq(a, pc)
	dst := make([]float64, 2)
	e.ApplyPC(dst, []float64{3, 4})
	if dst[0] != 6 || pc.applies != 1 {
		t.Fatal("delegation broken")
	}
	if e.Counters().PCFlops != 10 {
		t.Fatal("PC flops not charged")
	}
}

func TestSeqReductionsAreLocalNoOps(t *testing.T) {
	e := NewSeq(sparse.Identity(2), nil)
	buf := []float64{5, 7}
	e.AllreduceSum(buf)
	if buf[0] != 5 || buf[1] != 7 {
		t.Fatal("single-rank allreduce must not change data")
	}
	req := e.IallreduceSum(buf)
	req.Wait()
	if e.Counters().Allreduce != 1 || e.Counters().Iallreduce != 1 || e.Counters().ReduceWords != 4 {
		t.Fatalf("counters %+v", e.Counters())
	}
}

func TestSeqCharge(t *testing.T) {
	e := NewSeq(sparse.Identity(2), nil)
	e.Charge(42, 100)
	if e.Counters().Flops != 42 {
		t.Fatal("charge")
	}
}
