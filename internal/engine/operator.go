package engine

import (
	"repro/internal/sparse"
	"repro/internal/vec"
)

// Operator is the linear operator the engines apply. *sparse.CSR is the
// canonical implementation; matrix-free operators (e.g. the grid stencils)
// implement the same contract without storing the matrix. The three MulVec
// forms mirror the CSR kernels: global product, global-indexed row range
// (rank-local SPMV into a global vector), and local-indexed row range (the
// SPMD runtime's form, y[i-lo] = (A·x)[i]).
//
// The chunk-plan hooks expose the parallel execution geometry: ChunkPlan
// returns the cached full-range nnz-balanced plan (a pure function of the
// operator structure, never of the worker count — the PR 1 determinism
// contract) and InvalidatePlan drops it after a structural mutation so a
// stale plan can never be served.
type Operator interface {
	// Dims returns the operator shape (rows, cols).
	Dims() (rows, cols int)
	// NNZ returns the number of (stored or implied) nonzeros; engines use it
	// to account SPMV flops.
	NNZ() int
	// MulVec computes y = A·x. y and x must not alias.
	MulVec(y, x []float64)
	// MulVecRange computes y[i] = (A·x)[i] for i in [lo, hi), y indexed
	// globally.
	MulVecRange(y, x []float64, lo, hi int)
	// MulVecRangeInto computes y[i-lo] = (A·x)[i] for i in [lo, hi).
	MulVecRangeInto(y, x []float64, lo, hi int)
	// Diag returns the operator diagonal (zeros where absent).
	Diag() []float64
	// DiagRange returns the diagonal of rows [lo, hi), locally indexed.
	DiagRange(lo, hi int) []float64
	// ChunkPlan returns the cached full-range chunk plan.
	ChunkPlan() *sparse.Chunks
	// InvalidatePlan drops the cached chunk plan.
	InvalidatePlan()
}

// FusedOperator is an optional Operator capability: the cache-blocked fused
// SPMV + local-dot kernel. MulVecFused computes y[i-yoff] = scale·(A·x)[i]
// for rows [lo, hi) and dots[k] = ws[k]·y over the produced range (nil ws[k]
// means y·y), dotting each chunk of y while it is still cache-hot instead of
// re-reading it in separate Scale/Dot sweeps.
type FusedOperator interface {
	Operator
	MulVecFused(y, x []float64, lo, hi, yoff int, scale float64, ws [][]float64, dots []float64)
}

// FusedSpMV is an optional Engine capability: dst = scale·(A·src) over the
// local rows plus the rank-local dot products dots[k] = ws[k]·dst (nil ws[k]
// means dst·dst), fused into the SPMV's pass over the rows. ws entries share
// dst's local indexing. The caller accounts the scale/dot work via Charge —
// uniformly across engines — so backends only count the SPMV itself.
type FusedSpMV interface {
	SpMVFusedDots(dst, src []float64, scale float64, ws [][]float64, dots []float64)
}

// FusedApply routes the fused product through the operator's fused kernel
// when it has one, and otherwise emulates it with the basic kernels:
// product, element-wise scale, then one vec.Dot per ws entry. The emulation
// is deterministic but folds its dots over vec's length-uniform chunk
// geometry rather than the operator's work-balanced plan, so mixing fused
// and unfused operators for the same logical run changes bits; engines in a
// run always share one operator, which keeps every rank on one path.
// yoff must be 0 (global y) or lo (local y), matching the MulVec forms.
func FusedApply(op Operator, y, x []float64, lo, hi, yoff int, scale float64, ws [][]float64, dots []float64) {
	if f, ok := op.(FusedOperator); ok {
		f.MulVecFused(y, x, lo, hi, yoff, scale, ws, dots)
		return
	}
	if yoff == 0 {
		op.MulVecRange(y, x, lo, hi)
	} else {
		op.MulVecRangeInto(y, x, lo, hi)
	}
	local := y[lo-yoff : hi-yoff]
	if scale != 1 {
		vec.Scale(local, scale)
	}
	for k, w := range ws {
		src := local
		if w != nil {
			src = w[lo-yoff : hi-yoff]
		}
		dots[k] = vec.Dot(src, local)
	}
}

// SpMVFusedOn invokes the engine's fused SPMV capability when present, and
// otherwise emulates it with the basic Engine kernels (same values via
// vec.Dot's geometry, two extra sweeps). No work is charged here — the
// caller charges the scale and dot payload identically on both paths.
func SpMVFusedOn(e Engine, dst, src []float64, scale float64, ws [][]float64, dots []float64) {
	if f, ok := e.(FusedSpMV); ok {
		f.SpMVFusedDots(dst, src, scale, ws, dots)
		return
	}
	e.SpMV(dst, src)
	if scale != 1 {
		vec.Scale(dst, scale)
	}
	for k, w := range ws {
		if w == nil {
			w = dst
		}
		dots[k] = vec.Dot(w, dst)
	}
}

var _ FusedOperator = (*sparse.CSR)(nil)
