// Package engine defines the runtime abstraction the Krylov solvers are
// written against, plus the reference sequential implementation.
//
// Solvers are written once, in SPMD style, as the per-rank program: they
// operate on local vector slices, call SpMV/ApplyPC for the communication-
// aware kernels, compute local dot products themselves, and combine them
// with AllreduceSum (blocking, PCG-style) or IallreduceSum (non-blocking,
// the pipelined methods' MPI_Iallreduce). Three engines implement the
// interface:
//
//   - engine.Seq — one rank, global vectors, no timing: reference numerics.
//   - comm.Engine — R goroutine ranks with channel-based collectives and a
//     true asynchronous allreduce (real overlap).
//   - sim.Engine — one rank running the real numerics while a virtual-clock
//     cost model prices every kernel for a modeled machine with P ranks.
package engine

import (
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Request is a pending non-blocking reduction. Wait blocks until the reduced
// values are available in the buffer passed to IallreduceSum.
type Request interface {
	Wait()
}

// DeadlineRequest is an optional Request capability: WaitTimeout bounds the
// wait and returns an error (typed by the backend, e.g. *comm.FaultError)
// when the reduction has not completed within d — the solver-side belt over
// the fabric's own receive deadlines. After a nil return the buffer holds
// the global sums, exactly as after Wait.
type DeadlineRequest interface {
	Request
	WaitTimeout(d time.Duration) error
}

// Preconditioner applies M⁻¹ to a vector. Implementations live in
// internal/precond; the engine routes ApplyPC through one of these.
type Preconditioner interface {
	// Apply computes dst = M⁻¹·src. dst and src do not alias.
	Apply(dst, src []float64)
	// Name identifies the preconditioner in reports ("jacobi", "ssor", ...).
	Name() string
	// WorkPerApply returns the modeled global cost of one application:
	// floating point operations and bytes of memory traffic, plus the
	// number of neighbor-exchange rounds and internal allreduces the
	// distributed application would need (0 for local preconditioners).
	WorkPerApply() (flops, bytes float64, p2pRounds, allreduces int)
}

// PowersKernel is an optional Engine capability: the matrix powers kernel
// (Hoemmen), computing dst[j] = A^{j+1}·src for j = 0..len(dst)-1 with a
// single communication phase instead of one halo exchange per product. The
// paper's §II discusses why PIPE-sCG does not require it (it hides the
// allreduce, not the SPMV's neighbor traffic) but can compose with it for
// unpreconditioned solves.
type PowersKernel interface {
	SpMVPowers(dst [][]float64, src []float64)
}

// Engine is the runtime a solver executes on.
type Engine interface {
	// NLocal returns the number of rows this rank owns.
	NLocal() int
	// NGlobal returns the global problem size.
	NGlobal() int

	// SpMV computes dst = A·src over the local rows, performing whatever
	// halo communication the backend needs. dst and src must not alias.
	SpMV(dst, src []float64)

	// ApplyPC computes dst = M⁻¹·src over the local rows.
	ApplyPC(dst, src []float64)

	// AllreduceSum sums buf element-wise across all ranks, blocking.
	AllreduceSum(buf []float64)

	// IallreduceSum starts a non-blocking element-wise sum of buf across
	// ranks. buf must not be read or written until the returned request's
	// Wait returns, after which buf holds the global sums.
	IallreduceSum(buf []float64) Request

	// Charge accounts local vector work (VMAs, recurrence linear
	// combinations, local dot products): flops executed and bytes of
	// memory traffic. Backends that model time price this; all backends
	// count it.
	Charge(flops, bytes float64)

	// Counters exposes the kernel counters of this rank.
	Counters() *trace.Counters
}

// TraceRequest wraps a pending reduction so its wait is measured against the
// tracer's overlap ledger: BeginWait when the solver blocks, EndWait when the
// reduction delivers, AbortWait when the wait fails (deadline, fabric fault)
// so a reduction that never completed cannot pollute the hidden-fraction
// statistics. With a nil tracer the request is returned unwrapped. The
// wrapper always satisfies DeadlineRequest; when the underlying request does
// not, WaitTimeout degrades to an unbounded Wait — exactly what waitReduce
// did for such requests before wrapping.
func TraceRequest(req Request, tr *obs.Tracer, h int) Request {
	if tr == nil {
		return req
	}
	return tracedRequest{req: req, tr: tr, h: h}
}

type tracedRequest struct {
	req Request
	tr  *obs.Tracer
	h   int
}

func (r tracedRequest) Wait() {
	r.tr.BeginWait(r.h)
	ok := false
	defer func() {
		if !ok {
			r.tr.AbortWait(r.h)
		}
	}()
	r.req.Wait()
	ok = true
	r.tr.EndWait(r.h)
}

func (r tracedRequest) WaitTimeout(d time.Duration) error {
	r.tr.BeginWait(r.h)
	ok := false
	defer func() {
		if !ok {
			r.tr.AbortWait(r.h)
		}
	}()
	if dr, isDeadline := r.req.(DeadlineRequest); isDeadline {
		if err := dr.WaitTimeout(d); err != nil {
			ok = true // not a panic: AbortWait explicitly, then report
			r.tr.AbortWait(r.h)
			return err
		}
	} else {
		r.req.Wait()
	}
	ok = true
	r.tr.EndWait(r.h)
	return nil
}

// Seq is the single-rank reference engine: global vectors, immediate
// reductions, no cost model beyond counters.
type Seq struct {
	A  Operator
	PC Preconditioner
	C  trace.Counters

	// Tr is the optional observability tracer. Nil (the default) means no
	// tracing: every instrumentation site degrades to a nil check.
	Tr *obs.Tracer
}

// NewSeq returns a sequential engine for the operator a with the given
// preconditioner (nil means identity — the unpreconditioned methods).
func NewSeq(a Operator, pc Preconditioner) *Seq {
	return &Seq{A: a, PC: pc}
}

// NLocal implements Engine.
func (e *Seq) NLocal() int { rows, _ := e.A.Dims(); return rows }

// NGlobal implements Engine.
func (e *Seq) NGlobal() int { return e.NLocal() }

// BeginPhase implements obs.PhaseTracker.
func (e *Seq) BeginPhase(p obs.Phase) obs.Span { return e.Tr.Begin(p) }

// EndPhase implements obs.PhaseTracker.
func (e *Seq) EndPhase(sp obs.Span) { e.Tr.End(sp) }

// SpMV implements Engine. The product runs on the shared worker pool (see
// internal/par); the counters record modeled work and are unaffected by how
// many OS threads execute it.
func (e *Seq) SpMV(dst, src []float64) {
	sp := e.Tr.Begin(obs.PhaseSpMV)
	e.A.MulVec(dst, src)
	e.Tr.End(sp)
	e.C.SpMV++
	e.C.HaloExchanges++
	e.C.SpMVFlops += 2 * float64(e.A.NNZ())
}

// SpMVFusedDots implements FusedSpMV: one traced SPMV span covering the
// fused product, scale and local dots. Counted as a single SPMV; the caller
// charges the scale/dot payload.
func (e *Seq) SpMVFusedDots(dst, src []float64, scale float64, ws [][]float64, dots []float64) {
	sp := e.Tr.Begin(obs.PhaseSpMV)
	rows, _ := e.A.Dims()
	FusedApply(e.A, dst, src, 0, rows, 0, scale, ws, dots)
	e.Tr.End(sp)
	e.C.SpMV++
	e.C.HaloExchanges++
	e.C.SpMVFlops += 2 * float64(e.A.NNZ())
}

// SpMVPowers implements PowersKernel (trivially, with one rank there is no
// communication to save).
func (e *Seq) SpMVPowers(dst [][]float64, src []float64) {
	sp := e.Tr.Begin(obs.PhaseSpMV)
	cur := src
	for j := range dst {
		e.A.MulVec(dst[j], cur)
		cur = dst[j]
		e.C.SpMV++
		e.C.SpMVFlops += 2 * float64(e.A.NNZ())
	}
	e.Tr.End(sp)
	e.C.HaloExchanges++
}

// ApplyPC implements Engine.
func (e *Seq) ApplyPC(dst, src []float64) {
	sp := e.Tr.Begin(obs.PhasePCApply)
	defer e.Tr.End(sp)
	e.C.PCApply++
	if e.PC == nil {
		copy(dst, src)
		return
	}
	e.PC.Apply(dst, src)
	flops, _, _, _ := e.PC.WorkPerApply()
	e.C.PCFlops += flops
}

// AllreduceSum implements Engine; with one rank it is a no-op on the data,
// but it still enters the overlap ledger as a blocking reduction (hidden
// fraction 0 by construction) so per-method reduction mixes stay comparable
// across runtimes.
func (e *Seq) AllreduceSum(buf []float64) {
	sp := e.Tr.Begin(obs.PhaseAllreduceWait)
	e.Tr.EndBlocking(sp, len(buf))
	e.C.Allreduce++
	e.C.ReduceWords += len(buf)
}

type seqRequest struct{}

func (seqRequest) Wait() {}

// IallreduceSum implements Engine.
func (e *Seq) IallreduceSum(buf []float64) Request {
	sp := e.Tr.Begin(obs.PhaseIallreducePost)
	h := e.Tr.Post(len(buf))
	e.Tr.End(sp)
	e.C.Iallreduce++
	e.C.ReduceWords += len(buf)
	return TraceRequest(seqRequest{}, e.Tr, h)
}

// Charge implements Engine.
func (e *Seq) Charge(flops, bytes float64) { e.C.Flops += flops }

// Counters implements Engine.
func (e *Seq) Counters() *trace.Counters { return &e.C }
