package engine

import (
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// BlockOperator is the optional block (multi-RHS) capability on an Operator:
// apply A to a batch of source columns with one read of the operator.
//
// The contract is strict bit-identity per column: MulMat(ys, xs) must leave
// ys[j] exactly equal — to the bit, at any worker count — to what
// MulVec(ys[j], xs[j]) would have produced. Implementations achieve this by
// replicating the scalar kernel's accumulation order per column and sharing
// the same nnz-balanced chunk plans; it is what lets the block solver
// guarantee that a width-k gang solve equals k independent solves.
type BlockOperator interface {
	Operator
	// MulMat computes ys[j] = A·xs[j] for every column j.
	MulMat(ys, xs [][]float64)
	// MulMatRangeInto computes ys[j][i-lo] = (A·xs[j])[i] for rows [lo, hi)
	// — local-length destinations, the distributed row-block shape.
	MulMatRangeInto(ys, xs [][]float64, lo, hi int)
}

// Both concrete operator families implement the block capability.
var (
	_ BlockOperator = (*sparse.CSR)(nil)
	_ BlockOperator = (*grid.StencilOp)(nil)
)

// ApplyBlock routes a batch through the operator's block kernel when it has
// one and falls back to per-column application otherwise. Destinations are
// local-length (row i of the range lands at ys[j][i-lo]). The bit-identity
// contract on BlockOperator makes the two routes indistinguishable except
// in speed.
func ApplyBlock(op Operator, ys, xs [][]float64, lo, hi int) {
	if b, ok := op.(BlockOperator); ok {
		if lo == 0 {
			if rows, _ := op.Dims(); hi == rows {
				b.MulMat(ys, xs)
				return
			}
		}
		b.MulMatRangeInto(ys, xs, lo, hi)
		return
	}
	for j := range xs {
		op.MulVecRangeInto(ys[j], xs[j], lo, hi)
	}
}

// BlockSpMV is the optional engine capability the block solver keys on:
// dsts[j] = A·srcs[j] over the engine's local rows for a whole batch,
// sharing one pass over the operator — and, on distributed backends, one
// halo-exchange round — across the batch. Engines without it still work
// under a gang; the batch just degrades to per-column SpMV calls.
type BlockSpMV interface {
	SpMVBlock(dsts, srcs [][]float64)
}

// SpMVBlock implements BlockSpMV on the sequential engine. The ledger books
// the batch as the client-visible work — len(srcs) SPMVs' worth of flops —
// over a single logical halo exchange, mirroring how the distributed
// backend pays one message round for the whole batch.
func (e *Seq) SpMVBlock(dsts, srcs [][]float64) {
	sp := e.Tr.Begin(obs.PhaseBlockSpMV)
	rows, _ := e.A.Dims()
	ApplyBlock(e.A, dsts, srcs, 0, rows)
	e.Tr.End(sp)
	e.C.SpMV += len(srcs)
	e.C.HaloExchanges++
	e.C.SpMVFlops += 2 * float64(e.A.NNZ()) * float64(len(srcs))
}
