GO ?= go

.PHONY: all build test race vet bench bench-kernels chaos tier1

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the worker pool and the
# goroutine-rank communication runtime (which shares the pool across ranks).
race:
	$(GO) test -race ./internal/par/... ./internal/comm/...

vet:
	$(GO) vet ./...

# Seeded fault-injection suite under the race detector: the injector, the
# deadline/ack-resend/checksum machinery, the mailbox leak check, and the
# chaos matrix over solvers × fault scenarios × rank counts.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Resilience|Ladder|Leak|Timeout|Deadlock|Straggler|Checksum|RecoverPolicy|Injector|SendBufferReuse|RunErr|CloseCancels' ./internal/comm ./internal/krylov

# tier1 is the gate every change must pass: build, vet, full tests, the
# race detector over the concurrent packages, and the chaos suite.
tier1: build vet test race chaos

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Kernel-layer scaling benches: SPMV, Gram/dot, and the solver-level run at
# 1 worker versus all cores.
bench-kernels:
	$(GO) test -bench='SpMVParallel|GramParallel|DotParallel|RangeOverhead' ./internal/...
	$(GO) test -bench=SolverParallelKernels .
