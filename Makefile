GO ?= go

.PHONY: all build test race vet bench bench-kernels perf chaos serve-smoke cluster-chaos audit variant-audit timeline batch-smoke trace-smoke tier1

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-bearing packages: the worker pool, the
# goroutine-rank communication runtime (which shares the pool across ranks),
# the solver service (registry LRU, job manager, drain), the span tracer
# (shared by all ranks' reductions in flight), and the hot-path kernel
# packages (chunk-plan caches, fused folds, stencil kernels).
# The two invocations are deliberate: go test runs package binaries in
# parallel, and the kernel packages saturate the worker pool — co-scheduling
# them with the timing-sensitive serve drain smoke makes its deadline flaky.
race:
	$(GO) test -race ./internal/par/... ./internal/comm/... ./internal/serve/... ./internal/cluster/... ./internal/audit/... ./internal/obs/... ./internal/blockcg/...
	$(GO) test -race ./internal/sparse/... ./internal/grid/... ./internal/vec/...

vet:
	$(GO) vet ./...

# Seeded fault-injection suite under the race detector: the injector, the
# deadline/ack-resend/checksum machinery, the mailbox leak check, and the
# chaos matrix over solvers × fault scenarios × rank counts.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Resilience|Ladder|Leak|Timeout|Deadlock|Straggler|Checksum|RecoverPolicy|Injector|SendBufferReuse|RunErr|CloseCancels' ./internal/comm ./internal/krylov

# Solver-service smoke: a real daemon on an ephemeral port, 32 concurrent
# closed-loop clients over 4 registry entries, zero lost jobs, graceful
# drain, goroutine-leak assertion — all under the race detector.
serve-smoke:
	$(GO) test -race -run TestServeSmoke -v -count=1 ./internal/serve

# Inter-daemon chaos: three real solverd shards behind a solverouter on real
# sockets, a keyed load, and a SIGKILL-equivalent crash of one shard staged
# mid-solve — zero lost jobs, exactly-once retries via idempotency keys,
# x_hash bit-identical to the single-daemon baseline, goroutine-leak
# assertion — all under the race detector.
cluster-chaos:
	$(GO) test -race -run TestClusterChaos -v -count=1 ./internal/cluster

# Differential correctness harness: a seeded config sweep through every
# runtime (seq, sim, comm P∈{1,4,7}) judged for bit-identity, cross-rank
# outcome equivalence, true-residual drift, and history invariants — plus
# the harness's own self-tests — under the race detector.
audit:
	$(GO) test -race -count=1 -run 'TestAudit|TestGenerate|TestParseConfig|TestDrift|TestGram|TestComparator|TestInvariants|TestExecute|TestLedger' ./internal/audit

# Stability-aware variant family gate: a seeded 50-config differential sweep
# restricted to pipe-pr-cg / pipe-m-cg-rr (default and explicit replacement
# cadences, bit tier across seq/sim/commP1, outcome tier cross-P) with zero
# violations, plus the rr wire-format round-trip and the shrinker's
# cadence-validity regression — under the race detector.
variant-audit:
	$(GO) test -race -count=1 -run 'TestVariant|TestShrinkKeepsCadenceValid' ./internal/audit

# Timeline export smoke: an instrumented PIPE-PsCG solve at P=4 plus a
# stagnation-recovery demo, written as Chrome trace-event JSON and validated
# (well-formed complete events, every phase present on every rank, overlap
# ledger attached).
timeline:
	$(GO) run ./cmd/timeline -o /tmp/repro-timeline.json
	$(GO) run ./cmd/timeline -check /tmp/repro-timeline.json

# Distributed-tracing smoke: a client-originated traced job through a real
# solverouter against two real solverd shards, all four flight dumps
# stitched into ONE Chrome trace (client submit → route → attempt → queue
# wait → solve → per-rank phases) and validated for parent linkage, unique
# span IDs, no orphans, and the per-rank phase floor — first in-process
# under the race detector, then re-checked from the written artifact by the
# standalone validator. The failover leg kills the primary mid-stream and
# pins trace_id continuity across the retry.
trace-smoke:
	$(GO) test -race -run 'TestTraceSmoke|TestFailoverTracePropagation' -v -count=1 ./internal/cluster
	$(GO) run ./cmd/timeline -check /tmp/repro-trace-smoke.json

# Multi-RHS coalescing smoke: a real daemon with batching on, a burst of
# seeded jobs behind a queue plug so the coalescer sees a full backlog,
# per-job x_hash bit-identical to the unbatched baseline, batch-width
# metrics visible, graceful drain, goroutine-leak assertion — all under
# the race detector.
batch-smoke:
	$(GO) test -race -run TestBatchSmoke -v -count=1 ./internal/serve

# tier1 is the gate every change must pass: build, vet, full tests, the
# race detector over the concurrent packages, the chaos suite, the
# solver-service smoke, the multi-RHS coalescing smoke, the inter-daemon
# cluster chaos run, the differential audit sweep, the timeline export
# smoke, the distributed-tracing smoke, and the hot-path kernel perf smoke.
tier1: build vet test race chaos serve-smoke batch-smoke cluster-chaos audit variant-audit timeline trace-smoke perf

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Hot-path kernel perf smoke: the stencil-vs-CSR SPMV pair and the fused
# powers-block step, run short (100 iterations, 3 samples) so tier1 catches
# a kernel that stops compiling or collapses, without turning the gate into
# a benchmark farm. cmd/perfreport produces the committed BENCH_pr6.json.
perf:
	$(GO) test -bench 'SpMV3D|SpMV2D|PowersStep' -benchtime=100x -count=3 -run xxx ./internal/grid

# Kernel-layer scaling benches: SPMV, Gram/dot, and the solver-level run at
# 1 worker versus all cores.
bench-kernels:
	$(GO) test -bench='SpMVParallel|GramParallel|DotParallel|RangeOverhead' ./internal/...
	$(GO) test -bench=SolverParallelKernels .
