// Norms: the paper's qualitative advantage of PIPE-PsCG (§IV-C) — the same
// solve can test convergence against the preconditioned, unpreconditioned or
// natural residual norm without any extra PC or SPMV kernels, unlike
// PIPELCG, which needs an extra PC and SPMV per iteration for two of the
// three. This example solves one system under each norm and shows the
// kernel counters are identical.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/precond"
)

func main() {
	g := grid.NewCube(24, grid.Box125)
	a := g.Laplacian()
	b := grid.OnesRHS(a)

	fmt.Println("PIPE-PsCG under the three residual norms (125-pt Poisson, 24³):")
	fmt.Printf("%-18s %-6s %-10s %-8s %-8s %-8s\n",
		"norm", "iters", "relres", "#spmv", "#pc", "#allreduce")
	for _, mode := range []krylov.NormMode{
		krylov.NormPreconditioned, krylov.NormUnpreconditioned, krylov.NormNatural,
	} {
		e := engine.NewSeq(a, precond.NewJacobi(a, 0, a.Rows))
		opt := krylov.Defaults()
		opt.Norm = mode
		res, err := krylov.PIPEPSCG(e, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("norm %v did not converge", mode)
		}
		c := e.Counters()
		fmt.Printf("%-18s %-6d %-10.2e %-8d %-8d %-8d\n",
			mode, res.Iterations, res.RelRes, c.SpMV, c.PCApply, c.TotalAllreduces())
	}
	fmt.Println("\nSame kernel counts per iteration for every norm — the overlap")
	fmt.Println("structure never changes, which is the method's advantage over")
	fmt.Println("PIPELCG (extra PC+SPMV per iteration for non-natural norms).")
}
