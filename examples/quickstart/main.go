// Quickstart: solve a 3D Poisson problem with the paper's PIPE-PsCG method
// in a few lines — build the operator, pick a preconditioner, solve.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/precond"
)

func main() {
	// A 3D Poisson operator on a 32³ grid (7-point stencil), with the
	// right-hand side chosen so the exact solution is the ones vector.
	g := grid.NewCube(32, grid.Star7)
	a := g.Laplacian()
	b := grid.OnesRHS(a)

	// Jacobi preconditioner and a sequential engine (swap in comm.Engine
	// for real SPMD ranks, or sim.Engine for modeled cluster timing).
	pc := precond.NewJacobi(a, 0, a.Rows)
	e := engine.NewSeq(a, pc)

	opt := krylov.Defaults() // rtol 1e-5, s=3, preconditioned norm
	res, err := krylov.PIPEPSCG(e, b, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("method:      %s\n", res.Method)
	fmt.Printf("converged:   %v in %d iterations (%d outer, s=%d)\n",
		res.Converged, res.Iterations, res.Outer, opt.S)
	fmt.Printf("rel. residual: %.3e\n", res.RelRes)
	fmt.Printf("x[0] = %.6f (exact solution is 1.0 everywhere)\n", res.X[0])
	fmt.Printf("kernels:     %s\n", e.Counters())
}
