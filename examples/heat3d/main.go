// Heat3d: an implicit thermal simulation — the kind of application the
// paper's introduction motivates. Each backward-Euler time step solves
// (I + dt·L)·T_new = T_old with the 125-point operator; the solve uses
// PIPE-PsCG with a geometric multigrid preconditioner.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/precond"
	"repro/internal/sparse"
)

func main() {
	const (
		n     = 20   // 20³ grid
		dt    = 5e-3 // time step
		steps = 5
	)
	g := grid.NewCube(n, grid.Box125)
	lap := g.Laplacian()

	// System matrix M = I + dt·L (SPD since L is SPD).
	a := sparse.Add(sparse.Identity(lap.Rows), dt, lap)

	mg, err := precond.NewGMG(g, a, 400)
	if err != nil {
		log.Fatal(err)
	}
	e := engine.NewSeq(a, mg)

	// Initial temperature: a hot Gaussian blob in the center.
	temp := make([]float64, a.Rows)
	for i := range temp {
		x, y, z := g.Coords(i)
		dx, dy, dz := float64(x-n/2), float64(y-n/2), float64(z-n/2)
		temp[i] = 100 * math.Exp(-(dx*dx+dy*dy+dz*dz)/18)
	}

	opt := krylov.Defaults()
	opt.RelTol = 1e-8
	fmt.Printf("implicit heat stepping on %d³ grid, 125-pt operator, MG(%d levels) + PIPE-PsCG\n",
		n, mg.Levels())
	fmt.Printf("step   peak T     mean T     iters\n")
	for step := 1; step <= steps; step++ {
		res, err := krylov.PIPEPSCG(e, temp, opt)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			log.Fatalf("step %d did not converge (relres %.3e)", step, res.RelRes)
		}
		copy(temp, res.X)
		peak, mean := 0.0, 0.0
		for _, v := range temp {
			if v > peak {
				peak = v
			}
			mean += v
		}
		mean /= float64(len(temp))
		fmt.Printf("%4d   %8.3f   %8.4f   %5d\n", step, peak, mean, res.Iterations)
	}
	fmt.Println("peak temperature decays as the blob diffuses — physics sanity check passed")
}
