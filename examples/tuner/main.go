// Tuner: the paper's future-work feature — given the linear system
// dimensions and the core count, pick the optimal s for PIPE-PsCG from the
// Table I cost model, then verify the choice against the simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/perfmodel"
	"repro/internal/sim"
)

func main() {
	pr := bench.Poisson125(24) // 13.8k unknowns — fast demo
	m := sim.CrayXC40()

	model := perfmodel.Problem{
		N: pr.A.Rows, NNZ: pr.A.NNZ(),
		PCFlops: float64(pr.A.Rows), PCBytes: 24 * float64(pr.A.Rows),
	}

	fmt.Printf("auto-s tuner for %s (N=%d, nnz=%d) on %s\n\n", pr.Name, pr.A.Rows, pr.A.NNZ(), m.Name)
	fmt.Println("model prediction:")
	scales := []int{1, 10, 40, 80, 140}
	choices := map[int]int{}
	for _, nodes := range scales {
		p := nodes * m.CoresPerNode
		s, t := perfmodel.ChooseS(m, model, p, 8)
		choices[nodes] = s
		fmt.Printf("  %3d nodes: optimal s = %d (predicted %.3g s per iteration)\n", nodes, s, t)
	}

	// Verify with the simulator: run PIPE-PsCG at several s and report the
	// measured (modeled) time at each scale.
	fmt.Println("\nsimulator check (modeled time to convergence, seconds):")
	opt := bench.DefaultOptions(pr)
	svals := []int{1, 2, 3, 4, 5, 6}
	runs := map[int]*bench.Run{}
	for _, s := range svals {
		o := opt
		o.S = s
		run, err := bench.RunSim(pr, "pipe-pscg", "jacobi", o)
		if err != nil {
			log.Fatal(err)
		}
		runs[s] = run
	}
	fmt.Printf("  nodes")
	for _, s := range svals {
		fmt.Printf("     s=%d", s)
	}
	fmt.Println("   model-pick")
	for _, nodes := range scales {
		p := nodes * m.CoresPerNode
		fmt.Printf("  %5d", nodes)
		bestS, bestT := 0, 0.0
		for _, s := range svals {
			t := runs[s].Eng.Evaluate(m, p).Total
			if bestS == 0 || t < bestT {
				bestS, bestT = s, t
			}
			fmt.Printf("  %6.4f", t)
		}
		fmt.Printf("   s=%d (sim best s=%d)\n", choices[nodes], bestS)
	}
	fmt.Println("\nnote: at this demo's tiny problem size the setup kernels dominate and")
	fmt.Println("the simulator favors small s; at the paper's 1M-unknown scale the")
	fmt.Println("model's growing-s choice matches the simulator (see cmd/ssense -n 100).")
}
