// Pressure: an OpenFOAM-motif pressure Poisson solve (the paper's §VI-E
// points out OpenFOAM solves these at rtol 1e-2) on a heterogeneous 2D
// conductance field, run SPMD on the goroutine runtime with real
// non-blocking allreduces — the Hybrid-pipelined method finishing at a
// tighter tolerance than the s-step recurrences alone support.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/krylov"
	"repro/internal/partition"
	"repro/internal/precond"
	"repro/internal/sparse"
	"repro/internal/synth"
)

func main() {
	const ranks = 4

	// A heterogeneous conductance grid (ecology2-like, reduced scale).
	m := synth.Ecology2(16) // ≈62×62
	a := m.A
	b := grid.OnesRHS(a)
	fmt.Printf("pressure Poisson: %s stand-in, N=%d nnz=%d, %d SPMD ranks\n",
		m.Name, a.Rows, a.NNZ(), ranks)

	pt := partition.RowBlockByNNZ(a, ranks)
	fabric := comm.NewFabric(ranks, 50*time.Microsecond) // injected hop latency
	engines := comm.NewEngines(fabric, a, pt,
		func(a *sparse.CSR, lo, hi int) engine.Preconditioner {
			return precond.NewJacobi(a, lo, hi)
		})
	bs := comm.Scatter(pt, b)

	opt := krylov.Defaults()
	opt.RelTol = 1e-2 // the OpenFOAM default the paper cites

	results := make([]*krylov.Result, ranks)
	start := time.Now()
	comm.Run(engines, func(r int, e *comm.Engine) {
		res, err := krylov.Hybrid(e, bs[r], opt)
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
		results[r] = res
	})
	elapsed := time.Since(start)

	res := results[0]
	fmt.Printf("%s: converged=%v in %d iterations, relres=%.3e\n",
		res.Method, res.Converged, res.Iterations, res.RelRes)
	fmt.Printf("wall time %v with real overlapped allreduces (rank-0 counters: %s)\n",
		elapsed.Round(time.Millisecond), engines[0].Counters())

	// Reassemble the global pressure field and report its range.
	xs := make([][]float64, ranks)
	for r := range xs {
		xs[r] = results[r].X
	}
	x := comm.Gather(pt, xs)
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("pressure field range: [%.4f, %.4f]\n", lo, hi)
}
